//! A page-granular LRU buffer cache over any page-addressed store.
//!
//! This is the "internal DRAM" of the Integrated-SLC/MLC/TLC and
//! PAGE-buffer accelerators (Table I): processing elements can only reach
//! the underlying medium through whole-page transfers staged in DRAM.
//! The two costs the paper attributes to this design fall out naturally:
//!
//! * a miss stalls the requester for a full page fetch even when it needs
//!   a few bytes (read amplification → the IPC zero-plateaus of Fig. 18);
//! * small scattered writes dirty whole pages and waste buffer space
//!   ("DRAM pollution", §VI-C).

use crate::dram::{DramModel, DramParams};
use sim_core::energy::EnergyBook;
use sim_core::fault::FaultCounters;
use sim_core::mem::{Access, MemoryBackend};
use sim_core::probe::{AttrSpan, Cause, Probe};
use sim_core::snapshot::{Snapshot, SnapshotError, StateImage};
use sim_core::time::Picos;
use util::fxhash::FxHashMap;
use util::json::{field, Json, ToJson};
use util::telemetry::{MetricSet, Track};

/// A page-addressed backing store (flash device, PRAM page adapter …).
pub trait PageStore {
    /// Page size in bytes.
    fn page_bytes(&self) -> u32;

    /// Fetches one whole page.
    fn fetch_page(&mut self, at: Picos, page: u64) -> Access;

    /// Writes back one whole page.
    fn store_page(&mut self, at: Picos, page: u64) -> Access;

    /// Energy charged by the store so far.
    fn store_energy(&self) -> EnergyBook;

    /// Diagnostic label.
    fn store_label(&self) -> &'static str;

    /// Installs a telemetry probe; stores without instrumentation
    /// points ignore it.
    fn set_probe(&mut self, _probe: Probe) {}

    /// Contributes this store's end-of-run metrics into `out`.
    fn collect_metrics(&self, _out: &mut MetricSet) {}

    /// Contributes this store's fault-injection ledger into `out`.
    fn collect_faults(&self, _out: &mut FaultCounters) {}

    /// Serializes the store's complete mutable state (the object-safe
    /// face of [`Snapshot`] for stores behind a cache).
    ///
    /// # Errors
    ///
    /// The default implementation reports the store as
    /// [`SnapshotError::Unsupported`]; snapshot-capable stores override.
    fn store_snapshot(&self) -> Result<StateImage, SnapshotError> {
        Err(SnapshotError::unsupported(self.store_label()))
    }

    /// Restores state captured by [`PageStore::store_snapshot`].
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] on kind/version mismatch, malformed
    /// payloads, or (the default) an unsupporting store.
    fn store_restore(&mut self, _image: &StateImage) -> Result<(), SnapshotError> {
        Err(SnapshotError::unsupported(self.store_label()))
    }
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit a resident page.
    pub hits: u64,
    /// Accesses that required a page fetch.
    pub misses: u64,
    /// Dirty pages written back on eviction.
    pub writebacks: u64,
}

util::json_struct!(CacheStats {
    hits,
    misses,
    writebacks
});

impl CacheStats {
    /// Hit ratio in `0.0..=1.0` (1.0 when no accesses yet).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// An LRU page cache in DRAM fronting a [`PageStore`].
///
/// Capacity pressure is the point: the paper's accelerators have a 1 GB
/// buffer against multi-GB datasets, so `capacity_pages` should be set
/// well below the working set to reproduce their behaviour.
#[derive(Debug, Clone)]
pub struct CachedStore<P> {
    store: P,
    dram: DramModel,
    capacity_pages: usize,
    /// page -> (dirty, lru_stamp)
    resident: FxHashMap<u64, (bool, u64)>,
    clock: u64,
    stats: CacheStats,
    probe: Probe,
}

/// The internal-DRAM buffer cache's single trace lane.
const CACHE_TRACK: Track = Track::new("dram-cache", 0);

impl<P: PageStore> CachedStore<P> {
    /// Creates a cache of `capacity_pages` pages over `store`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_pages` is zero.
    pub fn new(store: P, dram: DramParams, capacity_pages: usize) -> Self {
        assert!(capacity_pages > 0, "cache needs at least one page");
        CachedStore {
            store,
            dram: DramModel::new(dram),
            capacity_pages,
            resident: FxHashMap::default(),
            clock: 0,
            stats: CacheStats::default(),
            probe: Probe::disabled(),
        }
    }

    /// Cache statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The wrapped store.
    pub fn store(&self) -> &P {
        &self.store
    }

    /// Mutable access to the wrapped store (preloading).
    pub fn store_mut(&mut self) -> &mut P {
        &mut self.store
    }

    /// Currently resident pages.
    pub fn resident_pages(&self) -> usize {
        self.resident.len()
    }

    fn touch(&mut self, page: u64, dirty: bool) {
        self.clock += 1;
        let e = self.resident.entry(page).or_insert((false, 0));
        e.0 |= dirty;
        e.1 = self.clock;
    }

    /// Ensures `page` is resident, returning when it became available.
    /// Miss costs (victim write-back, page fetch, DRAM landing) advance
    /// the request's attribution span when one is being kept.
    fn ensure_resident(
        &mut self,
        at: Picos,
        page: u64,
        dirty: bool,
        attr: &mut Option<AttrSpan>,
    ) -> Picos {
        if self.resident.contains_key(&page) {
            self.stats.hits += 1;
            self.touch(page, dirty);
            return at;
        }
        self.stats.misses += 1;
        let mut t = at;
        // Evict the LRU page first if full.
        if self.resident.len() >= self.capacity_pages {
            let (&victim, &(vdirty, _)) = self
                .resident
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .expect("cache is non-empty when full");
            self.resident.remove(&victim);
            if vdirty {
                // Write-back before reusing the frame; the DRAM read of
                // the victim page overlaps the store's program time, so
                // only the store cost is on the critical path.
                let a = self.store.store_page(t, victim);
                self.probe.span(CACHE_TRACK, "page_wb", a.start, a.end);
                self.stats.writebacks += 1;
                if let Some(sp) = attr {
                    sp.advance(Cause::Media, a.end);
                }
                t = a.end;
            }
        }
        let a = self.store.fetch_page(t, page);
        self.probe.span(CACHE_TRACK, "page_fetch", a.start, a.end);
        self.probe.latency("cache.fetch", a.end.saturating_sub(t));
        // Landing the page in DRAM.
        let d = self.dram.write(a.end, 0, self.store.page_bytes());
        if let Some(sp) = attr {
            sp.advance(Cause::Media, a.end);
            sp.advance(Cause::DataBurst, d.end);
        }
        self.touch(page, dirty);
        d.end
    }

    /// Flushes every dirty page (end-of-run accounting), returning the
    /// completion time.
    pub fn flush(&mut self, at: Picos) -> Picos {
        let dirty: Vec<u64> = self
            .resident
            .iter()
            .filter(|(_, (d, _))| *d)
            .map(|(&p, _)| p)
            .collect();
        let mut t = at;
        for p in dirty {
            let a = self.store.store_page(t, p);
            self.stats.writebacks += 1;
            self.resident.get_mut(&p).expect("resident").0 = false;
            t = t.max(a.end);
        }
        t
    }

    /// Wraps the cache's own state around an already-captured store
    /// image (shared by the [`Snapshot`] impl and the fallible
    /// [`MemoryBackend::snapshot_state`] hook).
    fn own_image(&self, store: StateImage) -> StateImage {
        let data = Json::Obj(vec![
            ("store".to_string(), store.to_json()),
            ("dram".to_string(), self.dram.to_json()),
            ("capacity_pages".to_string(), self.capacity_pages.to_json()),
            (
                "resident".to_string(),
                sim_core::snapshot::sorted_pairs(self.resident.iter().map(|(k, v)| (*k, *v))),
            ),
            ("clock".to_string(), self.clock.to_json()),
            ("stats".to_string(), self.stats.to_json()),
        ]);
        StateImage::new(CACHE_KIND, CACHE_VERSION, data)
    }

    /// Restores the cache's own fields, handing back the nested store
    /// image for the caller to apply. The probe stays attached.
    fn restore_own(&mut self, image: &StateImage) -> Result<StateImage, SnapshotError> {
        let data = image.expect(CACHE_KIND, CACHE_VERSION)?;
        let m = |e| SnapshotError::malformed(CACHE_KIND, e);
        let store: StateImage = field(data, "store").map_err(m)?;
        let resident = sim_core::snapshot::pairs_from::<(bool, u64)>(
            data.get("resident").unwrap_or(&Json::Null),
        )
        .map_err(m)?;
        self.dram = field(data, "dram").map_err(m)?;
        self.capacity_pages = field(data, "capacity_pages").map_err(m)?;
        self.resident = resident.into_iter().collect();
        self.clock = field(data, "clock").map_err(m)?;
        self.stats = field(data, "stats").map_err(m)?;
        Ok(store)
    }
}

/// Image tag for [`CachedStore`] snapshots.
const CACHE_KIND: &str = "storage/cache";
/// Schema version of [`CACHE_KIND`] images.
const CACHE_VERSION: u32 = 1;

impl<P: PageStore + Snapshot> Snapshot for CachedStore<P> {
    fn snapshot(&self) -> StateImage {
        self.own_image(self.store.snapshot())
    }

    fn restore(&mut self, image: &StateImage) -> Result<(), SnapshotError> {
        let store = self.restore_own(image)?;
        self.store.restore(&store)
    }
}

impl<P: PageStore> MemoryBackend for CachedStore<P> {
    fn read(&mut self, at: Picos, addr: u64, len: u32) -> Access {
        let pb = self.store.page_bytes() as u64;
        let first = addr / pb;
        let last = (addr + len as u64 - 1) / pb;
        let mut attr = self.probe.attr_on().then(|| AttrSpan::new(at));
        let mut t = at;
        for page in first..=last {
            t = self.ensure_resident(t, page, false, &mut attr);
        }
        // Serve the bytes from DRAM.
        let a = self.dram.read(t, 0, len);
        if let Some(sp) = attr.as_mut() {
            sp.advance(Cause::BufferHit, a.end);
            self.probe.attr_record("cache.read", sp);
        }
        Access {
            start: at,
            end: a.end,
        }
    }

    fn write(&mut self, at: Picos, addr: u64, len: u32) -> Access {
        let pb = self.store.page_bytes() as u64;
        let first = addr / pb;
        let last = (addr + len as u64 - 1) / pb;
        let mut attr = self.probe.attr_on().then(|| AttrSpan::new(at));
        let mut t = at;
        for page in first..=last {
            // A partial-page write still needs the page resident
            // (read-modify-write at page granularity).
            t = self.ensure_resident(t, page, true, &mut attr);
        }
        let a = self.dram.write(t, 0, len);
        if let Some(sp) = attr.as_mut() {
            sp.advance(Cause::BufferHit, a.end);
            self.probe.attr_record("cache.write", sp);
        }
        Access {
            start: at,
            end: a.end,
        }
    }

    fn energy(&self) -> EnergyBook {
        let mut e = self.dram.energy();
        e.merge(&self.store.store_energy());
        e
    }

    fn label(&self) -> &'static str {
        self.store.store_label()
    }

    fn set_probe(&mut self, probe: Probe) {
        self.store.set_probe(probe.clone());
        self.probe = probe;
    }

    fn probe(&self) -> &Probe {
        &self.probe
    }

    fn collect_metrics(&self, out: &mut MetricSet) {
        out.add("cache.hits", self.stats.hits);
        out.add("cache.misses", self.stats.misses);
        out.add("cache.writebacks", self.stats.writebacks);
        self.store.collect_metrics(out);
    }

    fn collect_faults(&self, out: &mut FaultCounters) {
        self.store.collect_faults(out);
    }

    fn snapshot_state(&self) -> Result<StateImage, SnapshotError> {
        Ok(self.own_image(self.store.store_snapshot()?))
    }

    fn restore_state(&mut self, image: &StateImage) -> Result<(), SnapshotError> {
        let store = self.restore_own(image)?;
        self.store.store_restore(&store)
    }
}

/// [`PageStore`] for a flash device: logical pages map 1:1.
impl PageStore for flash::FlashDevice {
    fn page_bytes(&self) -> u32 {
        FlashDevice::page_bytes(self)
    }

    fn fetch_page(&mut self, at: Picos, page: u64) -> Access {
        self.read_page(at, page).0
    }

    fn store_page(&mut self, at: Picos, page: u64) -> Access {
        let data = vec![0x5Au8; FlashDevice::page_bytes(self) as usize];
        self.write_page(at, page, &data)
    }

    fn store_energy(&self) -> EnergyBook {
        self.energy().clone()
    }

    fn store_label(&self) -> &'static str {
        match self.kind() {
            flash::CellKind::Slc => "integrated-slc",
            flash::CellKind::Mlc => "integrated-mlc",
            flash::CellKind::Tlc => "integrated-tlc",
        }
    }

    fn store_snapshot(&self) -> Result<StateImage, SnapshotError> {
        Ok(Snapshot::snapshot(self))
    }

    fn store_restore(&mut self, image: &StateImage) -> Result<(), SnapshotError> {
        Snapshot::restore(self, image)
    }
}

use flash::FlashDevice;

#[cfg(test)]
mod tests {
    use super::*;
    use flash::{CellKind, FlashGeometry};

    fn cached(cap: usize) -> CachedStore<FlashDevice> {
        let dev = FlashDevice::new(FlashGeometry::tiny(), CellKind::Slc);
        CachedStore::new(dev, DramParams::default(), cap)
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = cached(4);
        let a = c.read(Picos::ZERO, 100, 32);
        assert_eq!(c.stats().misses, 1);
        // Miss pays the full page fetch: tens of microseconds.
        assert!(a.end > Picos::from_us(40));
        let b = c.read(a.end, 132, 32);
        assert_eq!(c.stats().hits, 1);
        // Hit is DRAM-fast.
        assert!(b.end - a.end < Picos::from_us(1));
    }

    #[test]
    fn small_read_pays_whole_page() {
        // The read-amplification the paper blames for PE idling.
        let mut c = cached(4);
        let a = c.read(Picos::ZERO, 0, 4);
        assert!(a.end > Picos::from_us(40), "4-byte read cost {:?}", a.end);
    }

    #[test]
    fn eviction_of_dirty_page_writes_back() {
        let mut c = cached(2);
        let pb = 16 * 1024u64;
        let mut t = Picos::ZERO;
        // Dirty page 0, then touch pages 1, 2 to evict it.
        t = c.write(t, 0, 32).end;
        t = c.read(t, pb, 32).end;
        t = c.read(t, 2 * pb, 32).end;
        assert!(c.stats().writebacks >= 1);
        assert!(c.resident_pages() <= 2);
        let _ = t;
    }

    #[test]
    fn lru_keeps_hot_page() {
        let mut c = cached(2);
        let pb = 16 * 1024u64;
        let mut t = Picos::ZERO;
        t = c.read(t, 0, 32).end; // page 0
        t = c.read(t, pb, 32).end; // page 1
        t = c.read(t, 0, 32).end; // touch page 0 (hot)
        t = c.read(t, 2 * pb, 32).end; // page 2 evicts page 1
        let m = c.stats().misses;
        t = c.read(t, 0, 32).end; // page 0 still resident
        assert_eq!(c.stats().misses, m);
        let _ = t;
    }

    #[test]
    fn flush_writes_all_dirty_pages() {
        let mut c = cached(8);
        let pb = 16 * 1024u64;
        let mut t = Picos::ZERO;
        for p in 0..4u64 {
            t = c.write(t, p * pb, 64).end;
        }
        let done = c.flush(t);
        assert!(done > t);
        assert_eq!(c.stats().writebacks, 4);
        // Second flush is a no-op.
        assert_eq!(c.flush(done), done);
    }

    #[test]
    fn spanning_access_touches_both_pages() {
        let mut c = cached(4);
        let pb = 16 * 1024u64;
        c.read(Picos::ZERO, pb - 16, 32);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn hit_ratio() {
        let mut c = cached(4);
        assert_eq!(c.stats().hit_ratio(), 1.0);
        c.read(Picos::ZERO, 0, 32);
        c.read(Picos::from_ms(1), 0, 32);
        assert!((c.stats().hit_ratio() - 0.5).abs() < 1e-9);
    }
}
