//! A PRAM-based SSD à la Intel Optane (Table I: "Hetero-PRAM" /
//! "Heterodirect-PRAM" external storage).
//!
//! The device exposes a block interface; internally it serializes each
//! block request into byte-granular PRAM operations spread over parallel
//! lanes. Reads are fast (0.1 µs per word). Writes pay the PRAM program
//! asymmetry — 10 µs to pristine words, 18 µs overwrites — which is why
//! §VI-C observes Hetero-PRAM "wastes energy on storing the outputs to
//! PRAM SSDs by serializing all page-basis requests into byte-granular
//! operations".

use sim_core::energy::{EnergyBook, Joules};
use sim_core::mem::{Access, MemoryBackend};
use sim_core::snapshot::{SnapshotError, StateImage};
use sim_core::time::Picos;
use sim_core::timeline::TimelineBank;
use std::collections::HashSet;

/// Energy of one 32 B PRAM word read inside the SSD.
const E_WORD_READ: Joules = Joules::from_nj(1);
/// Energy of one word program.
const E_WORD_PROGRAM: Joules = Joules::from_nj(20);

/// Construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PramSsdParams {
    /// Internal parallel lanes (channels × banks the controller stripes
    /// words over).
    pub lanes: usize,
    /// Word (management unit) size in bytes.
    pub word_bytes: u32,
    /// Word read latency (Table I: 0.1 µs).
    pub t_read: Picos,
    /// SET-only word program (Table I: 10 µs).
    pub t_write_set: Picos,
    /// Overwrite word program (Table I: 18 µs).
    pub t_write_overwrite: Picos,
    /// Controller command-processing time per request.
    pub command_overhead: Picos,
}

util::json_struct!(PramSsdParams {
    lanes,
    word_bytes,
    t_read,
    t_write_set,
    t_write_overwrite,
    command_overhead,
});

impl Default for PramSsdParams {
    fn default() -> Self {
        PramSsdParams {
            lanes: 16,
            word_bytes: 32,
            t_read: Picos::from_ns(100),
            t_write_set: Picos::from_us(10),
            t_write_overwrite: Picos::from_us(18),
            command_overhead: Picos::from_us(3),
        }
    }
}

/// The PRAM SSD device.
///
/// # Examples
///
/// ```
/// use storage::PramSsd;
/// use sim_core::{MemoryBackend, Picos};
///
/// let mut ssd = PramSsd::new(Default::default());
/// // Writes are accepted into the capacitor-backed buffer quickly…
/// let w = ssd.write(Picos::ZERO, 0, 4096);
/// assert!(w.end < Picos::from_us(4));
/// // …but the word programs drain on the internal lanes, so a read
/// // right behind the write queues past the backlog.
/// let r = ssd.read(w.end, 0, 4096);
/// assert!(r.end > Picos::from_us(80));
/// ```
#[derive(Debug, Clone)]
pub struct PramSsd {
    params: PramSsdParams,
    lanes: TimelineBank,
    /// Words that have been programmed at least once (next program is an
    /// overwrite).
    written: HashSet<u64>,
    energy: EnergyBook,
    requests: u64,
}

impl PramSsd {
    /// Builds the device.
    pub fn new(params: PramSsdParams) -> Self {
        PramSsd {
            lanes: TimelineBank::new(params.lanes),
            params,
            written: HashSet::new(),
            energy: EnergyBook::new(),
            requests: 0,
        }
    }

    /// The parameters.
    pub fn params(&self) -> &PramSsdParams {
        &self.params
    }

    /// Requests serviced.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    fn word_range(&self, addr: u64, len: u32) -> (u64, u64) {
        let wb = self.params.word_bytes as u64;
        (addr / wb, (addr + len as u64 - 1) / wb)
    }
}

/// Image tag for [`PramSsd`] snapshots.
const PRAM_SSD_KIND: &str = "storage/pram-ssd";
/// Schema version of [`PRAM_SSD_KIND`] images.
const PRAM_SSD_VERSION: u32 = 1;

impl sim_core::Snapshot for PramSsd {
    fn snapshot(&self) -> StateImage {
        use util::json::ToJson;
        let mut written: Vec<u64> = self.written.iter().copied().collect();
        written.sort_unstable();
        let data = util::json::Json::Obj(vec![
            ("params".to_string(), self.params.to_json()),
            ("lanes".to_string(), self.lanes.to_json()),
            ("written".to_string(), written.to_json()),
            ("energy".to_string(), self.energy.to_json()),
            ("requests".to_string(), self.requests.to_json()),
        ]);
        StateImage::new(PRAM_SSD_KIND, PRAM_SSD_VERSION, data)
    }

    fn restore(&mut self, image: &StateImage) -> Result<(), SnapshotError> {
        use util::json::field;
        let data = image.expect(PRAM_SSD_KIND, PRAM_SSD_VERSION)?;
        let m = |e| SnapshotError::malformed(PRAM_SSD_KIND, e);
        let written: Vec<u64> = field(data, "written").map_err(m)?;
        self.params = field(data, "params").map_err(m)?;
        self.lanes = field(data, "lanes").map_err(m)?;
        self.written = written.into_iter().collect();
        self.energy = field(data, "energy").map_err(m)?;
        self.requests = field(data, "requests").map_err(m)?;
        Ok(())
    }
}

impl MemoryBackend for PramSsd {
    fn read(&mut self, at: Picos, addr: u64, len: u32) -> Access {
        self.requests += 1;
        let t = at + self.params.command_overhead;
        let (first, last) = self.word_range(addr, len);
        let mut end = t;
        for w in first..=last {
            let lane = (w % self.params.lanes as u64) as usize;
            let (_, e) = self.lanes.get_mut(lane).reserve_span(t, self.params.t_read);
            self.energy.charge("pram-ssd.read", E_WORD_READ);
            end = end.max(e);
        }
        Access { start: at, end }
    }

    fn write(&mut self, at: Picos, addr: u64, len: u32) -> Access {
        self.requests += 1;
        let t = at + self.params.command_overhead;
        let (first, last) = self.word_range(addr, len);
        // The controller's capacitor-backed write buffer accepts the data
        // immediately; word programs drain on the lanes in the background
        // and congest later requests to the same lanes — the
        // "serializing page-basis requests into byte-granular operations"
        // cost of §VI-C shows up as lane backlog, not per-write stalls.
        for w in first..=last {
            let lane = (w % self.params.lanes as u64) as usize;
            let dur = if self.written.insert(w) {
                self.params.t_write_set
            } else {
                self.params.t_write_overwrite
            };
            self.lanes.get_mut(lane).reserve(t, dur);
            self.energy.charge("pram-ssd.program", E_WORD_PROGRAM);
        }
        Access { start: at, end: t }
    }

    fn energy(&self) -> EnergyBook {
        self.energy.clone()
    }

    fn label(&self) -> &'static str {
        "pram-ssd"
    }

    fn snapshot_state(&self) -> Result<StateImage, SnapshotError> {
        Ok(sim_core::Snapshot::snapshot(self))
    }

    fn restore_state(&mut self, image: &StateImage) -> Result<(), SnapshotError> {
        sim_core::Snapshot::restore(self, image)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_read_is_microseconds() {
        let mut s = PramSsd::new(PramSsdParams::default());
        let a = s.read(Picos::ZERO, 0, 4096);
        // 128 words over 16 lanes = 8 serial reads of 0.1 us + 3 us cmd.
        let lat = a.end;
        assert!(lat > Picos::from_us(3) && lat < Picos::from_us(6), "{lat}");
    }

    #[test]
    fn writes_are_buffered_but_congest_the_lanes() {
        let mut s = PramSsd::new(PramSsdParams::default());
        // The write itself is accepted quickly…
        let a = s.write(Picos::ZERO, 0, 4096);
        assert!(a.end < Picos::from_us(4), "{:?}", a.end);
        // …but a read right behind it queues past the lane backlog
        // (8 serial 10 us programs per lane).
        let r = s.read(a.end, 0, 4096);
        assert!(r.end > Picos::from_us(80), "{:?}", r.end);
    }

    #[test]
    fn overwrites_congest_lanes_longer_than_first_writes() {
        let mut set = PramSsd::new(PramSsdParams::default());
        set.write(Picos::ZERO, 0, 4096);
        let fresh = set.read(Picos::ZERO, 0, 4096).end;
        let mut over = PramSsd::new(PramSsdParams::default());
        over.write(Picos::ZERO, 0, 4096); // first: SET
        over.write(Picos::ZERO, 0, 4096); // second: overwrite backlog
        let behind = over.read(Picos::ZERO, 0, 4096).end;
        assert!(behind > fresh + Picos::from_us(100), "{behind} vs {fresh}");
    }

    #[test]
    fn energy_asymmetry() {
        let mut s = PramSsd::new(PramSsdParams::default());
        s.read(Picos::ZERO, 0, 4096);
        s.write(Picos::from_ms(1), 0, 4096);
        let e = s.energy();
        assert!(e.energy_of("pram-ssd.program") > e.energy_of("pram-ssd.read"));
    }
}
