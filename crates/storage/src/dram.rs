//! A simple DRAM timing/energy model.
//!
//! Used for the accelerator-internal DRAM of conventional designs and for
//! SSD buffer caches. Not the point of the paper — DRAM-less removes it —
//! so the model is deliberately simple: fixed access latency plus a
//! bandwidth-limited transfer term, with per-byte access energy and
//! standby power folded into per-access charges.

use sim_core::energy::{EnergyBook, Joules};
use sim_core::mem::{Access, MemoryBackend};
use sim_core::snapshot::{SnapshotError, StateImage};
use sim_core::time::Picos;
use sim_core::timeline::Timeline;

/// DRAM access energy per byte moved (row activation amortized).
const E_PER_BYTE: Joules = Joules::from_pj(20);

/// Construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramParams {
    /// Random-access latency (CAS + controller).
    pub latency: Picos,
    /// Sustained bandwidth in bytes/second.
    pub bytes_per_sec: u64,
    /// Capacity in bytes (requests beyond it panic — the capacity
    /// pressure of real DRAM is modeled by the configs, not silently
    /// wrapped here).
    pub capacity: u64,
}

util::json_struct!(DramParams {
    latency,
    bytes_per_sec,
    capacity
});

impl Default for DramParams {
    fn default() -> Self {
        DramParams {
            latency: Picos::from_ns(60),
            bytes_per_sec: 12_800_000_000, // DDR3-1600 class
            capacity: 1 << 30,             // the paper's 1 GB buffer
        }
    }
}

/// The DRAM device.
///
/// # Examples
///
/// ```
/// use storage::DramModel;
/// use sim_core::{MemoryBackend, Picos};
///
/// let mut d = DramModel::new(Default::default());
/// let a = d.read(Picos::ZERO, 0, 64);
/// assert!(a.end >= Picos::from_ns(60));
/// ```
#[derive(Debug, Clone)]
pub struct DramModel {
    params: DramParams,
    bus: Timeline,
    energy: EnergyBook,
    accesses: u64,
}

util::json_struct!(DramModel {
    params,
    bus,
    energy,
    accesses
});

sim_core::snapshot_via_json!(DramModel, "storage/dram", 1);

impl DramModel {
    /// Creates a DRAM with the given parameters.
    pub fn new(params: DramParams) -> Self {
        DramModel {
            params,
            bus: Timeline::new(),
            energy: EnergyBook::new(),
            accesses: 0,
        }
    }

    /// The parameters.
    pub fn params(&self) -> &DramParams {
        &self.params
    }

    /// Total accesses serviced.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    fn access(&mut self, at: Picos, addr: u64, len: u32) -> Access {
        assert!(
            addr + len as u64 <= self.params.capacity,
            "DRAM access beyond capacity: {addr:#x}+{len}"
        );
        let xfer = Picos::from_ps(len as u64 * 1_000_000_000_000 / self.params.bytes_per_sec);
        let (start, end) = self.bus.reserve_span(at + self.params.latency, xfer);
        self.energy
            .charge("dram.access", E_PER_BYTE.scaled(len as u64));
        self.accesses += 1;
        Access {
            start: start - self.params.latency,
            end,
        }
    }
}

impl MemoryBackend for DramModel {
    fn read(&mut self, at: Picos, addr: u64, len: u32) -> Access {
        self.access(at, addr, len)
    }

    fn write(&mut self, at: Picos, addr: u64, len: u32) -> Access {
        self.access(at, addr, len)
    }

    fn energy(&self) -> EnergyBook {
        self.energy.clone()
    }

    fn label(&self) -> &'static str {
        "dram"
    }

    fn snapshot_state(&self) -> Result<StateImage, SnapshotError> {
        Ok(sim_core::Snapshot::snapshot(self))
    }

    fn restore_state(&mut self, image: &StateImage) -> Result<(), SnapshotError> {
        sim_core::Snapshot::restore(self, image)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_plus_bandwidth() {
        let mut d = DramModel::new(DramParams::default());
        let a = d.read(Picos::ZERO, 0, 128);
        // 60 ns + 128 B / 12.8 GB/s = 60 + 10 ns.
        assert_eq!(a.end, Picos::from_ns(70));
    }

    #[test]
    fn concurrent_accesses_contend_on_the_bus() {
        let mut d = DramModel::new(DramParams::default());
        let big = 1 << 20;
        let a = d.read(Picos::ZERO, 0, big);
        let b = d.read(Picos::ZERO, big as u64, big);
        assert!(b.end > a.end, "second access queues behind the first");
    }

    #[test]
    fn energy_scales_with_bytes() {
        let mut d = DramModel::new(DramParams::default());
        d.read(Picos::ZERO, 0, 100);
        let e1 = d.energy().total();
        d.write(Picos::from_us(1), 0, 100);
        assert_eq!(d.energy().total(), e1 + e1);
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn capacity_enforced() {
        let mut d = DramModel::new(DramParams {
            capacity: 1024,
            ..Default::default()
        });
        d.read(Picos::ZERO, 1000, 100);
    }
}
