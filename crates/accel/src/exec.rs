//! The accelerator execution engine.
//!
//! [`Accelerator::run`] replays per-agent kernel [`Trace`]s against a
//! [`MemoryBackend`], reproducing the paper's execution model (Figure 9b):
//! the server wakes each agent through the PSC, plants the kernel boot
//! address, and the agents then alternate compute bursts with memory
//! operations. Loads and stores walk the agent's private L1/L2; L2
//! misses cross the crossbar to the server's MCU and become backend
//! requests. The engine records everything the paper's figures need —
//! per-agent IPC over time, power over time, execution-time decomposition
//! and an energy ledger.

use crate::cache::{Cache, CacheConfig, CacheLevelStats};
use crate::pe::{PeConfig, PeStats};
use crate::psc::{PowerSleepController, PscParams};
use crate::sched::{MemSchedule, ReplayEvent, ReplayStep};
use crate::trace::{Trace, TraceIter, TraceOp};
use crate::xbar::{Crossbar, XbarConfig};
use sim_core::energy::{EnergyBook, Joules};
use sim_core::mem::{MemoryBackend, StreamOp};
use sim_core::probe::{AttrScope, Probe};
use sim_core::snapshot::{SnapshotError, StateImage};
use sim_core::stats::TimeSeries;
use sim_core::time::Picos;
use util::fingerprint::Fnv64;
use util::telemetry::{MetricSet, Track};

/// Accelerator construction parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccelConfig {
    /// Total processing elements (paper platform: 8; one is the server).
    pub pes: usize,
    /// Per-PE core parameters.
    pub pe: PeConfig,
    /// L1 geometry.
    pub l1: CacheConfig,
    /// L2 geometry.
    pub l2: CacheConfig,
    /// PSC transition timing.
    pub psc: PscParams,
    /// Server work to schedule one agent (parse metadata, plant boot
    /// address).
    pub launch_overhead: Picos,
    /// Time-series bucket width for IPC/power curves.
    pub sample_bucket: Picos,
    /// Whether the server announces store targets to the backend
    /// (enables selective erasing on PRAM controllers).
    pub announce_stores: bool,
    /// Outstanding posted write-backs the server's MCU can hold before a
    /// PE must stall on further evictions.
    pub mcu_write_queue: usize,
    /// Optional contended crossbar (Fig. 6a ablation). `None` charges
    /// the fixed [`PeConfig::xbar_latency`] per off-PE request, which is
    /// how the generously-provisioned real crossbar behaves.
    pub xbar: Option<XbarConfig>,
}

util::json_struct!(AccelConfig {
    pes,
    pe,
    l1,
    l2,
    psc,
    launch_overhead,
    sample_bucket,
    announce_stores,
    mcu_write_queue,
    xbar,
});

impl Default for AccelConfig {
    fn default() -> Self {
        AccelConfig {
            pes: 8,
            pe: PeConfig::default(),
            l1: CacheConfig::l1(),
            l2: CacheConfig::l2(),
            psc: PscParams::default(),
            launch_overhead: Picos::from_us(5),
            sample_bucket: Picos::from_us(20),
            announce_stores: true,
            mcu_write_queue: 16,
            xbar: None,
        }
    }
}

/// The result of one kernel execution.
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// Wall-clock completion (all agents done, caches flushed).
    pub total_time: Picos,
    /// Instructions retired across agents.
    pub instructions: u64,
    /// Σ agent compute time.
    pub compute_time: Picos,
    /// Σ agent memory-stall time.
    pub stall_time: Picos,
    /// Per-agent counters.
    pub pe_stats: Vec<PeStats>,
    /// Merged L1 counters.
    pub l1: CacheLevelStats,
    /// Merged L2 counters.
    pub l2: CacheLevelStats,
    /// Aggregate instructions retired per time bucket (divide by bucket
    /// cycles for the Fig. 18/19 IPC curves).
    pub ipc_series: TimeSeries,
    /// Joules dissipated per time bucket (divide by bucket width for the
    /// Fig. 20/21 power curves).
    pub power_series: TimeSeries,
    /// PE + PSC energy (backend energy is accounted by the caller, which
    /// owns the backend).
    pub energy: EnergyBook,
    /// Bytes fetched from the backend.
    pub bytes_from_mem: u64,
    /// Bytes written back to the backend.
    pub bytes_to_mem: u64,
    /// Backend requests issued (fills + write-backs).
    pub mem_requests: u64,
}

util::json_struct!(ExecReport {
    total_time,
    instructions,
    compute_time,
    stall_time,
    pe_stats,
    l1,
    l2,
    ipc_series,
    power_series,
    energy,
    bytes_from_mem,
    bytes_to_mem,
    mem_requests,
});

impl ExecReport {
    /// Aggregate average IPC (instructions per core-cycle summed over
    /// agents, as in Figs. 18–19's "total IPC").
    pub fn total_ipc(&self) -> f64 {
        if self.total_time.is_zero() {
            return 0.0;
        }
        self.instructions as f64 / self.total_time.as_ns_f64()
    }

    /// Data-processing bandwidth: bytes exchanged with memory over total
    /// time (the Fig. 13/15 metric).
    pub fn bandwidth_bytes_per_sec(&self) -> f64 {
        if self.total_time.is_zero() {
            return 0.0;
        }
        (self.bytes_from_mem + self.bytes_to_mem) as f64 / self.total_time.as_secs_f64()
    }

    /// Contributes the execution counters to a telemetry metric set
    /// under the `pe.` prefix.
    pub fn collect_metrics(&self, out: &mut MetricSet) {
        out.add("pe.instructions", self.instructions);
        out.add("pe.l1_hits", self.l1.hits);
        out.add("pe.l1_misses", self.l1.misses);
        out.add("pe.l2_hits", self.l2.hits);
        out.add("pe.l2_misses", self.l2.misses);
        out.add("pe.mem_requests", self.mem_requests);
        out.add("pe.bytes_from_mem", self.bytes_from_mem);
        out.add("pe.bytes_to_mem", self.bytes_to_mem);
        out.add("pe.compute_ns", self.compute_time.as_ps() / 1_000);
        out.add("pe.stall_ns", self.stall_time.as_ps() / 1_000);
        out.gauge("pe.ipc", self.total_ipc());
    }
}

/// The accelerator.
#[derive(Debug, Clone)]
pub struct Accelerator {
    config: AccelConfig,
    probe: Probe,
}

/// The server MCU's posted-write queue: slots hold the completion time
/// of in-flight write-backs. Posting returns the instant the requester
/// would have to wait for (the freed slot's previous occupancy) — zero
/// backpressure while slots are free.
struct WriteQueue {
    slots: Vec<Picos>,
}

impl WriteQueue {
    fn new(depth: usize) -> Self {
        WriteQueue {
            slots: vec![Picos::ZERO; depth.max(1)],
        }
    }

    /// Issues a posted write; returns when the PE may proceed (the time
    /// the reused slot freed).
    fn post(&mut self, backend: &mut dyn MemoryBackend, now: Picos, addr: u64, len: u32) -> Picos {
        let slot = (0..self.slots.len())
            .min_by_key(|&i| self.slots[i])
            .expect("queue is non-empty");
        let wait_until = self.slots[slot];
        let issue = now.max(wait_until);
        let acc = backend.write(issue, addr, len);
        self.slots[slot] = acc.end;
        wait_until
    }

    /// When every in-flight write has completed.
    fn drain_at(&self) -> Picos {
        self.slots.iter().copied().fold(Picos::ZERO, Picos::max)
    }
}

/// Per-agent execution state during a run. Ops decode straight off the
/// packed trace stream — nothing materializes a `Vec<TraceOp>`.
struct AgentRun<'t> {
    ops: TraceIter<'t>,
    time: Picos,
    l1: Cache,
    l2: Cache,
    stats: PeStats,
    done: bool,
}

/// Replay cursor of one agent: where it is in its step and event
/// streams.
#[derive(Debug, Clone)]
struct SchedRun {
    step: usize,
    event: usize,
    time: Picos,
    stats: PeStats,
    done: bool,
}

util::json_struct!(SchedRun {
    step,
    event,
    time,
    stats,
    done
});

/// The complete inter-slice state of a schedule replay — every loop
/// variable of [`Accelerator::run_schedule_at`], factored out so a run
/// can pause at any arbitration-slice boundary, be snapshotted
/// alongside its backend, and resume later. This is the checkpoint unit
/// of the record/replay layer.
///
/// A cursor is created by [`Accelerator::schedule_cursor`], advanced
/// one arbitration slice at a time by [`Accelerator::advance_slice`],
/// and turned into an [`ExecReport`] by
/// [`Accelerator::finish_schedule`]. While advancing it chains an
/// FNV-1a fingerprint over every backend request it issues (address,
/// kind, and the completion time the backend handed back), which is the
/// commitment record/replay verifies against.
#[derive(Debug, Clone)]
pub struct ScheduleCursor {
    start: Picos,
    agents: Vec<SchedRun>,
    times: Vec<Picos>,
    parked: Vec<bool>,
    wq: Vec<Picos>,
    psc: PowerSleepController,
    ipc_series: TimeSeries,
    power_series: TimeSeries,
    bytes_from: u64,
    bytes_to: u64,
    mem_requests: u64,
    compute_e: Joules,
    compute_n: u64,
    stall_e: Joules,
    stall_n: u64,
    stream_fp: Fnv64,
    // Transient fast-path caches. Deliberately excluded from snapshots
    // (restore resets them): they only skip re-deriving bit-identical
    // values, never change them.
    memo_compute: Option<(u64, Picos, Joules, f64)>,
    memo_stall: Option<(Picos, Joules, f64)>,
    buf: Vec<StreamOp>,
}

impl ScheduleCursor {
    /// Backend requests issued so far (fills + write-backs) — the
    /// record layer's checkpoint cadence counter.
    pub fn mem_requests(&self) -> u64 {
        self.mem_requests
    }

    /// The chained FNV-1a digest over the backend request stream so
    /// far: per request its address and kind, plus the agent clock the
    /// backend returned after each batch.
    pub fn stream_fingerprint(&self) -> u64 {
        self.stream_fp.value()
    }

    /// Whether every agent has completed (the run can be finished).
    pub fn is_done(&self) -> bool {
        self.parked.iter().all(|&p| p)
    }
}

/// Image tag for [`ScheduleCursor`] snapshots.
const CURSOR_KIND: &str = "accel/schedule-cursor";
/// Schema version of [`CURSOR_KIND`] images.
const CURSOR_VERSION: u32 = 1;

impl sim_core::Snapshot for ScheduleCursor {
    fn snapshot(&self) -> StateImage {
        use util::json::ToJson;
        let data = util::json::Json::Obj(vec![
            ("start".to_string(), self.start.to_json()),
            ("agents".to_string(), self.agents.to_json()),
            ("times".to_string(), self.times.to_json()),
            ("parked".to_string(), self.parked.to_json()),
            ("wq".to_string(), self.wq.to_json()),
            ("psc".to_string(), self.psc.to_json()),
            ("ipc_series".to_string(), self.ipc_series.to_json()),
            ("power_series".to_string(), self.power_series.to_json()),
            ("bytes_from".to_string(), self.bytes_from.to_json()),
            ("bytes_to".to_string(), self.bytes_to.to_json()),
            ("mem_requests".to_string(), self.mem_requests.to_json()),
            ("compute_e".to_string(), self.compute_e.to_json()),
            ("compute_n".to_string(), self.compute_n.to_json()),
            ("stall_e".to_string(), self.stall_e.to_json()),
            ("stall_n".to_string(), self.stall_n.to_json()),
            ("stream_fp".to_string(), self.stream_fp.value().to_json()),
        ]);
        StateImage::new(CURSOR_KIND, CURSOR_VERSION, data)
    }

    fn restore(&mut self, image: &StateImage) -> Result<(), SnapshotError> {
        use util::json::field;
        let data = image.expect(CURSOR_KIND, CURSOR_VERSION)?;
        let m = |e| SnapshotError::malformed(CURSOR_KIND, e);
        let agents: Vec<SchedRun> = field(data, "agents").map_err(m)?;
        if agents.len() != self.agents.len() {
            return Err(SnapshotError::shape(
                CURSOR_KIND,
                "image was recorded under a different schedule (agent count differs)",
            ));
        }
        let wq: Vec<Picos> = field(data, "wq").map_err(m)?;
        if wq.len() != self.wq.len() {
            return Err(SnapshotError::shape(
                CURSOR_KIND,
                "image was recorded under a different MCU write-queue depth",
            ));
        }
        self.start = field(data, "start").map_err(m)?;
        self.agents = agents;
        self.times = field(data, "times").map_err(m)?;
        self.parked = field(data, "parked").map_err(m)?;
        self.wq = wq;
        self.psc = field(data, "psc").map_err(m)?;
        self.ipc_series = field(data, "ipc_series").map_err(m)?;
        self.power_series = field(data, "power_series").map_err(m)?;
        self.bytes_from = field(data, "bytes_from").map_err(m)?;
        self.bytes_to = field(data, "bytes_to").map_err(m)?;
        self.mem_requests = field(data, "mem_requests").map_err(m)?;
        self.compute_e = field(data, "compute_e").map_err(m)?;
        self.compute_n = field(data, "compute_n").map_err(m)?;
        self.stall_e = field(data, "stall_e").map_err(m)?;
        self.stall_n = field(data, "stall_n").map_err(m)?;
        self.stream_fp = Fnv64::resume(field(data, "stream_fp").map_err(m)?);
        self.memo_compute = None;
        self.memo_stall = None;
        self.buf.clear();
        Ok(())
    }
}

impl Accelerator {
    /// Creates an accelerator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has fewer than two PEs (a server and
    /// at least one agent).
    pub fn new(config: AccelConfig) -> Self {
        assert!(config.pes >= 2, "need a server plus at least one agent");
        Accelerator {
            config,
            probe: Probe::disabled(),
        }
    }

    /// Installs a telemetry probe; execution records one `pe/<n>` trace
    /// lane per agent (PE numbering matches Fig. 9b: the server is PE 0,
    /// agents are PEs 1..).
    pub fn set_probe(&mut self, probe: Probe) {
        self.probe = probe;
    }

    /// The configuration.
    pub fn config(&self) -> &AccelConfig {
        &self.config
    }

    /// Number of agent PEs available for kernels.
    pub fn agents(&self) -> usize {
        self.config.pes - 1
    }

    /// Executes one kernel: `traces[i]` runs on agent `i`, starting at
    /// simulated time zero.
    ///
    /// # Panics
    ///
    /// Panics if more traces than agents are supplied, or no traces.
    pub fn run(&self, traces: &[Trace], backend: &mut dyn MemoryBackend) -> ExecReport {
        self.run_at(Picos::ZERO, traces, backend)
    }

    /// Executes one kernel starting at absolute simulated time `start`,
    /// so the execution phase composes with earlier phases (offload,
    /// staging) that already reserved backend resources. All report
    /// times (total, series timestamps) are relative to `start`.
    ///
    /// # Panics
    ///
    /// Panics if more traces than agents are supplied, or no traces.
    pub fn run_at(
        &self,
        start: Picos,
        traces: &[Trace],
        backend: &mut dyn MemoryBackend,
    ) -> ExecReport {
        assert!(!traces.is_empty(), "no kernel traces supplied");
        assert!(
            traces.len() <= self.agents(),
            "{} traces but only {} agents",
            traces.len(),
            self.agents()
        );
        let cfg = &self.config;
        let mut psc = PowerSleepController::new(cfg.psc, cfg.pes);
        let mut energy = EnergyBook::new();
        // Runs typically span a few hundred sample buckets; reserving up
        // front keeps the per-op series appends reallocation-free.
        let series_cap = 512;
        let mut ipc_series = TimeSeries::with_capacity(cfg.sample_bucket, series_cap);
        let mut power_series = TimeSeries::with_capacity(cfg.sample_bucket, series_cap);

        // Server (PE 0) schedules the agents (Fig. 9b steps 3-6).
        let mut launch = start;
        let mut agents: Vec<AgentRun> = traces
            .iter()
            .enumerate()
            .map(|(i, trace)| {
                launch += cfg.launch_overhead;
                let ready = psc.wake(launch, i + 1);
                if cfg.announce_stores {
                    let targets = trace.store_targets(32);
                    if !targets.is_empty() {
                        backend.announce_overwrites(ready, &targets);
                    }
                }
                AgentRun {
                    ops: trace.iter(),
                    time: ready,
                    l1: Cache::new(cfg.l1),
                    l2: Cache::new(cfg.l2),
                    stats: PeStats::default(),
                    done: false,
                }
            })
            .collect();

        let mut bytes_from = 0u64;
        let mut bytes_to = 0u64;
        let mut mem_requests = 0u64;
        let l2_line = cfg.l2.line;
        let l1_line = cfg.l1.line;
        // The MCU write queue: posted write-backs drain in the
        // background; a PE only stalls when every slot is occupied past
        // its current time.
        let mut wq = WriteQueue::new(cfg.mcu_write_queue);
        // Optional contended crossbar; otherwise fixed-latency traversal.
        let mut xbar = cfg.xbar.map(Crossbar::new);
        let mut cross = |at: Picos, bytes: u32, fixed: Picos| -> Picos {
            match xbar.as_mut() {
                Some(x) => x.transfer(at, bytes),
                None => at + fixed,
            }
        };

        // Advance the globally-earliest agent so backend arbitration sees
        // requests in time order. The scheduler keeps the agent clocks in
        // a flat array (structure-of-arrays: one cache-line scan instead
        // of striding over the fat per-agent structs) and finds the
        // earliest agent *and the runner-up* in a single pass — the
        // chosen agent can then batch-advance ops locally for as long as
        // it stays strictly ahead of the runner-up, which is exactly the
        // set of steps a rescan-per-op loop would have given it.
        let n = agents.len();
        let mut times: Vec<Picos> = agents.iter().map(|a| a.time).collect();
        let mut parked: Vec<bool> = vec![false; n];
        loop {
            let mut best = usize::MAX;
            let mut second = usize::MAX;
            for i in 0..n {
                if parked[i] {
                    continue;
                }
                if best == usize::MAX || times[i] < times[best] {
                    second = best;
                    best = i;
                } else if second == usize::MAX || times[i] < times[second] {
                    second = i;
                }
            }
            if best == usize::MAX {
                break;
            }
            let idx = best;
            let bound = (second != usize::MAX).then(|| (times[second], second));
            let a = &mut agents[idx];
            loop {
                let Some(op) = a.ops.next() else {
                    // Kernel complete: flush caches (dirty results must
                    // land in memory before the completion message).
                    let l1_dirty = a.l1.flush();
                    for addr in l1_dirty {
                        let out = a.l2.access(addr, true);
                        if let Some(fill) = out.fill {
                            self.probe.attr_tag(AttrScope::Exec, mem_requests);
                            let acc = backend.read(a.time, fill, l2_line);
                            a.time = acc.end + cfg.pe.xbar_latency;
                            bytes_from += l2_line as u64;
                            mem_requests += 1;
                        }
                        if let Some(wb) = out.writeback {
                            self.probe.attr_tag(AttrScope::Exec, mem_requests);
                            let free_at = wq.post(backend, a.time, wb, l2_line);
                            a.time = a.time.max(free_at);
                            bytes_to += l2_line as u64;
                            mem_requests += 1;
                        }
                    }
                    for addr in a.l2.flush() {
                        self.probe.attr_tag(AttrScope::Exec, mem_requests);
                        let free_at = wq.post(backend, a.time, addr, l2_line);
                        a.time = a.time.max(free_at);
                        bytes_to += l2_line as u64;
                        mem_requests += 1;
                    }
                    // Results must be durable before the completion
                    // message: drain the whole write queue.
                    a.time = a.time.max(wq.drain_at());
                    a.done = true;
                    psc.sleep(a.time, idx + 1);
                    break;
                };
                match op {
                    TraceOp::Compute(block) => {
                        let dt = cfg.pe.clock.cycles_to_time(block.cycles());
                        let e = cfg.pe.p_active * dt;
                        energy.charge("pe.compute", e);
                        power_series.add(a.time - start, e.as_j());
                        ipc_series.add(a.time + dt - start, block.total() as f64);
                        self.probe.span(
                            Track::new("pe", idx as u32 + 1),
                            "compute",
                            a.time,
                            a.time + dt,
                        );
                        a.stats.instructions += block.total();
                        a.stats.compute_cycles += block.cycles();
                        a.stats.compute_time += dt;
                        a.time += dt;
                    }
                    TraceOp::Load { addr, len } | TraceOp::Store { addr, len } => {
                        let is_store = matches!(op, TraceOp::Store { .. });
                        let t0 = a.time;
                        // Touch every L1 line the access covers. The
                        // range is computed inline (same math as
                        // `Cache::lines_touched`) because borrowing the
                        // cache for an iterator here would alias the
                        // mutable accesses below — and collecting into a
                        // Vec per memory op dominated sweep allocations.
                        let line_bytes = l1_line as u64;
                        let first = addr / line_bytes;
                        let last = (addr + len.max(1) as u64 - 1) / line_bytes;
                        for line in (first..=last).map(|l| l * line_bytes) {
                            let l1_out = a.l1.access(line, is_store);
                            if l1_out.hit {
                                a.time += cfg.pe.clock.cycles_to_time(cfg.pe.l1_hit_cycles);
                                continue;
                            }
                            // L1 victim write-back goes to L2.
                            if let Some(wb) = l1_out.writeback {
                                let out = a.l2.access(wb, true);
                                if let Some(fill) = out.fill {
                                    self.probe.attr_tag(AttrScope::Exec, mem_requests);
                                    let acc = backend.read(a.time, fill, l2_line);
                                    a.time = cross(acc.end, l2_line, cfg.pe.xbar_latency);
                                    bytes_from += l2_line as u64;
                                    mem_requests += 1;
                                }
                                if let Some(l2wb) = out.writeback {
                                    self.probe.attr_tag(AttrScope::Exec, mem_requests);
                                    let free_at = wq.post(backend, a.time, l2wb, l2_line);
                                    a.time = a.time.max(free_at);
                                    bytes_to += l2_line as u64;
                                    mem_requests += 1;
                                }
                            }
                            // Fill the L1 line from L2.
                            let out = a.l2.access(line, false);
                            if out.hit {
                                a.time += cfg.pe.clock.cycles_to_time(cfg.pe.l2_hit_cycles);
                            } else {
                                if let Some(l2wb) = out.writeback {
                                    self.probe.attr_tag(AttrScope::Exec, mem_requests);
                                    let free_at = wq.post(backend, a.time, l2wb, l2_line);
                                    a.time = a.time.max(free_at);
                                    bytes_to += l2_line as u64;
                                    mem_requests += 1;
                                }
                                let fill = out.fill.expect("miss always fills");
                                self.probe.attr_tag(AttrScope::Exec, mem_requests);
                                let acc = backend.read(a.time, fill, l2_line);
                                a.time = cross(acc.end, l2_line, cfg.pe.xbar_latency);
                                bytes_from += l2_line as u64;
                                mem_requests += 1;
                            }
                        }
                        let dt = a.time - t0;
                        let e = cfg.pe.p_stall * dt;
                        energy.charge("pe.stall", e);
                        power_series.add(t0 - start, e.as_j());
                        ipc_series.add(a.time - start, 1.0);
                        if !dt.is_zero() {
                            self.probe
                                .span(Track::new("pe", idx as u32 + 1), "mem", t0, a.time);
                            self.probe.latency("pe.mem_op", dt);
                        }
                        a.stats.instructions += 1;
                        a.stats.stall_time += dt;
                        if is_store {
                            a.stats.stores += 1;
                        } else {
                            a.stats.loads += 1;
                        }
                    }
                }
                // Keep going while this agent would win the rescan: the
                // scheduler tie-breaks equal clocks by lowest index.
                match bound {
                    Some((bt, bi)) if !(a.time < bt || (a.time == bt && idx < bi)) => break,
                    _ => {}
                }
            }
            times[idx] = a.time;
            parked[idx] = a.done;
        }

        let total_time = agents.iter().map(|a| a.time).fold(Picos::ZERO, Picos::max) - start;
        // Server PE: orchestration power over the whole run; parked PEs:
        // sleep power.
        energy.charge("pe.server", cfg.pe.p_stall * total_time);
        let parked = (cfg.pes - 1 - agents.len()) as u64;
        energy.charge("pe.sleep", (cfg.pe.p_sleep * total_time).scaled(parked));

        let mut l1 = CacheLevelStats::default();
        let mut l2 = CacheLevelStats::default();
        for a in &agents {
            l1.hits += a.l1.stats().hits;
            l1.misses += a.l1.stats().misses;
            l1.writebacks += a.l1.stats().writebacks;
            l2.hits += a.l2.stats().hits;
            l2.misses += a.l2.stats().misses;
            l2.writebacks += a.l2.stats().writebacks;
        }

        ExecReport {
            total_time,
            instructions: agents.iter().map(|a| a.stats.instructions).sum(),
            compute_time: agents.iter().map(|a| a.stats.compute_time).sum(),
            stall_time: agents.iter().map(|a| a.stats.stall_time).sum(),
            pe_stats: agents.iter().map(|a| a.stats).collect(),
            l1,
            l2,
            ipc_series,
            power_series,
            energy,
            bytes_from_mem: bytes_from,
            bytes_to_mem: bytes_to,
            mem_requests,
        }
    }

    /// Executes one kernel by replaying a prebuilt [`MemSchedule`]
    /// instead of re-decoding traces and re-simulating the caches.
    ///
    /// Produces a report bit-identical to
    /// [`Accelerator::run_at`]`(start, traces, backend)` for the traces
    /// the schedule was built from — the schedule already froze the
    /// backend request stream and the per-op hit timing, so the replay
    /// keeps the same closed-loop issue/completion arbitration while
    /// skipping the trace decode, the cache simulation and the per-label
    /// energy map lookups. Backend requests cross the boundary through
    /// the batched [`MemoryBackend::run_stream`] entry, one slice per
    /// memory op.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is empty or has more agents than PEs, if
    /// its cache geometry differs from this accelerator's, or if a
    /// contended crossbar is configured (the replay models only the
    /// fixed-latency crossbar, which is every preset).
    pub fn run_schedule_at(
        &self,
        start: Picos,
        sched: &MemSchedule,
        backend: &mut dyn MemoryBackend,
    ) -> ExecReport {
        let mut cur = self.schedule_cursor(start, sched, backend);
        while self.advance_slice(&mut cur, sched, backend) {}
        self.finish_schedule(&cur, sched)
    }

    /// Opens a resumable [`ScheduleCursor`] over `sched`: performs the
    /// launch phase (server dispatch, PSC wakes, overwrite announces)
    /// and returns the replay state positioned before the first
    /// arbitration slice.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`Accelerator::run_schedule_at`] (empty schedule, too many
    /// agents, mismatched cache geometry, contended crossbar).
    pub fn schedule_cursor(
        &self,
        start: Picos,
        sched: &MemSchedule,
        backend: &mut dyn MemoryBackend,
    ) -> ScheduleCursor {
        assert!(!sched.agents.is_empty(), "no kernel traces supplied");
        assert!(
            sched.agents.len() <= self.agents(),
            "{} traces but only {} agents",
            sched.agents.len(),
            self.agents()
        );
        let cfg = &self.config;
        assert!(
            cfg.xbar.is_none(),
            "schedule replay supports only the fixed-latency crossbar"
        );
        assert!(
            sched.l1 == cfg.l1 && sched.l2 == cfg.l2,
            "schedule built under a different cache geometry"
        );
        let mut psc = PowerSleepController::new(cfg.psc, cfg.pes);
        // Runs typically span a few hundred sample buckets; reserving up
        // front keeps the per-op series appends reallocation-free.
        let series_cap = 512;

        // Server (PE 0) schedules the agents — identical launch path to
        // `run_at`, with the announce payload memoized in the schedule.
        let mut launch = start;
        let agents: Vec<SchedRun> = sched
            .agents
            .iter()
            .enumerate()
            .map(|(i, sa)| {
                launch += cfg.launch_overhead;
                let ready = psc.wake(launch, i + 1);
                if cfg.announce_stores && !sa.store_targets.is_empty() {
                    backend.announce_overwrites(ready, &sa.store_targets);
                }
                SchedRun {
                    step: 0,
                    event: 0,
                    time: ready,
                    stats: PeStats::default(),
                    done: false,
                }
            })
            .collect();

        let times = agents.iter().map(|a| a.time).collect();
        let parked = vec![false; agents.len()];
        ScheduleCursor {
            start,
            agents,
            times,
            parked,
            // The MCU write queue, as a bare slot array for `run_stream`.
            wq: vec![Picos::ZERO; cfg.mcu_write_queue.max(1)],
            psc,
            ipc_series: TimeSeries::with_capacity(cfg.sample_bucket, series_cap),
            power_series: TimeSeries::with_capacity(cfg.sample_bucket, series_cap),
            bytes_from: 0,
            bytes_to: 0,
            mem_requests: 0,
            // Per-label energy is accumulated locally and flushed in one
            // `charge_many` per label — `Joules` is an integer femtojoule
            // count, so the batched sum is bit-equal to per-op charges.
            compute_e: Joules(0),
            compute_n: 0,
            stall_e: Joules(0),
            stall_n: 0,
            stream_fp: Fnv64::new(),
            // One-entry memos for the per-op energy floats: kernel loops
            // repeat the same compute blocks and hit patterns, and
            // `Watts * Picos` plus `Joules::as_j` each round through f64
            // — memoizing on the duration reproduces the identical
            // per-op values while skipping the conversions for repeats.
            memo_compute: None,
            memo_stall: None,
            // Reused request slice handed to the backend per memory op.
            buf: Vec::with_capacity(16),
        }
    }

    /// Advances the cursor by one arbitration slice: picks the globally
    /// earliest agent and batch-advances its ops while it stays strictly
    /// ahead of the runner-up — the same set of steps a rescan-per-op
    /// loop would have given it. Returns `false` once every agent is
    /// parked (nothing left to run).
    ///
    /// Slice boundaries are the only legal snapshot points: between two
    /// calls the cursor holds no borrowed or half-applied state.
    pub fn advance_slice(
        &self,
        cur: &mut ScheduleCursor,
        sched: &MemSchedule,
        backend: &mut dyn MemoryBackend,
    ) -> bool {
        let cfg = &self.config;
        let l2_line = cfg.l2.line;
        // Hit service times are exact linear functions of the hit count
        // (`Picos * u64` is integer-exact), so a run of hits collapses
        // to one multiply without changing a single picosecond.
        let l1_hit = cfg.pe.clock.cycles_to_time(cfg.pe.l1_hit_cycles);
        let l2_hit = cfg.pe.clock.cycles_to_time(cfg.pe.l2_hit_cycles);
        let start = cur.start;

        let n = cur.agents.len();
        let mut best = usize::MAX;
        let mut second = usize::MAX;
        for i in 0..n {
            if cur.parked[i] {
                continue;
            }
            if best == usize::MAX || cur.times[i] < cur.times[best] {
                second = best;
                best = i;
            } else if second == usize::MAX || cur.times[i] < cur.times[second] {
                second = i;
            }
        }
        if best == usize::MAX {
            return false;
        }
        let idx = best;
        let bound = (second != usize::MAX).then(|| (cur.times[second], second));
        let sa = &sched.agents[idx];
        let a = &mut cur.agents[idx];
        loop {
            if a.step == sa.step_count() {
                // Kernel complete: the schedule's flush section holds
                // the dirty-line traffic the engine would issue.
                cur.buf.clear();
                for ei in sa.flush_start()..sa.event_count() {
                    match sa.event(ei) {
                        ReplayEvent::Fill(addr) => {
                            cur.buf.push(StreamOp {
                                advance: Picos::ZERO,
                                addr,
                                write: false,
                            });
                            cur.bytes_from += l2_line as u64;
                            cur.mem_requests += 1;
                        }
                        ReplayEvent::Writeback(addr) => {
                            cur.buf.push(StreamOp {
                                advance: Picos::ZERO,
                                addr,
                                write: true,
                            });
                            cur.bytes_to += l2_line as u64;
                            cur.mem_requests += 1;
                        }
                        ReplayEvent::Hits { .. } => {
                            unreachable!("flush section has no hits")
                        }
                    }
                }
                if !cur.buf.is_empty() {
                    // The batch base ordinal; `run_stream` steps the
                    // attribution cursor between ops, so per-request
                    // indices match the per-op engine path.
                    self.probe
                        .attr_tag(AttrScope::Exec, cur.mem_requests - cur.buf.len() as u64);
                    a.time = backend.run_stream(
                        a.time,
                        l2_line,
                        cfg.pe.xbar_latency,
                        &cur.buf,
                        &mut cur.wq,
                    );
                    for op in &cur.buf {
                        cur.stream_fp.mix_u64(op.addr);
                        cur.stream_fp.mix_u64(op.write as u64);
                    }
                    cur.stream_fp.mix_u64(a.time.as_ps());
                }
                // Results must be durable before the completion
                // message: drain the whole write queue.
                let drain = cur.wq.iter().copied().fold(Picos::ZERO, Picos::max);
                a.time = a.time.max(drain);
                a.done = true;
                cur.psc.sleep(a.time, idx + 1);
                break;
            }
            match sa.step(a.step) {
                ReplayStep::Compute { cycles, instrs } => {
                    let (dt, e, e_j) = match cur.memo_compute {
                        Some((c, dt, e, e_j)) if c == cycles => (dt, e, e_j),
                        _ => {
                            let dt = cfg.pe.clock.cycles_to_time(cycles);
                            let e = cfg.pe.p_active * dt;
                            let e_j = e.as_j();
                            cur.memo_compute = Some((cycles, dt, e, e_j));
                            (dt, e, e_j)
                        }
                    };
                    cur.compute_e += e;
                    cur.compute_n += 1;
                    cur.power_series.add(a.time - start, e_j);
                    cur.ipc_series.add(a.time + dt - start, instrs as f64);
                    self.probe.span(
                        Track::new("pe", idx as u32 + 1),
                        "compute",
                        a.time,
                        a.time + dt,
                    );
                    a.stats.instructions += instrs;
                    a.stats.compute_cycles += cycles;
                    a.stats.compute_time += dt;
                    a.time += dt;
                }
                ReplayStep::Mem { store, events } => {
                    let t0 = a.time;
                    'request: {
                        // Fast path: most memory ops are a single
                        // hit run — pure cache service time, no
                        // backend traffic, no batch to assemble.
                        if events == 1 {
                            if let ReplayEvent::Hits { l1, l2 } = sa.event(a.event) {
                                a.event += 1;
                                a.time += l1_hit * l1 + l2_hit * l2;
                                break 'request;
                            }
                        }
                        // Fold hit runs into the next request's
                        // advance; trailing hits land after the
                        // batch returns.
                        let mut pending = Picos::ZERO;
                        cur.buf.clear();
                        let end = a.event + events as usize;
                        while a.event < end {
                            match sa.event(a.event) {
                                ReplayEvent::Hits { l1, l2 } => {
                                    pending += l1_hit * l1 + l2_hit * l2;
                                }
                                ReplayEvent::Fill(addr) => {
                                    cur.buf.push(StreamOp {
                                        advance: pending,
                                        addr,
                                        write: false,
                                    });
                                    pending = Picos::ZERO;
                                    cur.bytes_from += l2_line as u64;
                                    cur.mem_requests += 1;
                                }
                                ReplayEvent::Writeback(addr) => {
                                    cur.buf.push(StreamOp {
                                        advance: pending,
                                        addr,
                                        write: true,
                                    });
                                    pending = Picos::ZERO;
                                    cur.bytes_to += l2_line as u64;
                                    cur.mem_requests += 1;
                                }
                            }
                            a.event += 1;
                        }
                        if !cur.buf.is_empty() {
                            self.probe
                                .attr_tag(AttrScope::Exec, cur.mem_requests - cur.buf.len() as u64);
                            a.time = backend.run_stream(
                                a.time,
                                l2_line,
                                cfg.pe.xbar_latency,
                                &cur.buf,
                                &mut cur.wq,
                            );
                            for op in &cur.buf {
                                cur.stream_fp.mix_u64(op.addr);
                                cur.stream_fp.mix_u64(op.write as u64);
                            }
                            cur.stream_fp.mix_u64(a.time.as_ps());
                        }
                        a.time += pending;
                    }
                    let dt = a.time - t0;
                    let (e, e_j) = match cur.memo_stall {
                        Some((d, e, e_j)) if d == dt => (e, e_j),
                        _ => {
                            let e = cfg.pe.p_stall * dt;
                            let e_j = e.as_j();
                            cur.memo_stall = Some((dt, e, e_j));
                            (e, e_j)
                        }
                    };
                    cur.stall_e += e;
                    cur.stall_n += 1;
                    cur.power_series.add(t0 - start, e_j);
                    cur.ipc_series.add(a.time - start, 1.0);
                    if !dt.is_zero() {
                        self.probe
                            .span(Track::new("pe", idx as u32 + 1), "mem", t0, a.time);
                        self.probe.latency("pe.mem_op", dt);
                    }
                    a.stats.instructions += 1;
                    a.stats.stall_time += dt;
                    if store {
                        a.stats.stores += 1;
                    } else {
                        a.stats.loads += 1;
                    }
                }
            }
            a.step += 1;
            // Keep going while this agent would win the rescan: the
            // scheduler tie-breaks equal clocks by lowest index.
            match bound {
                Some((bt, bi)) if !(a.time < bt || (a.time == bt && idx < bi)) => break,
                _ => {}
            }
        }
        cur.times[idx] = cur.agents[idx].time;
        cur.parked[idx] = cur.agents[idx].done;
        true
    }

    /// Turns a completed cursor into the [`ExecReport`]
    /// [`Accelerator::run_schedule_at`] would have returned.
    ///
    /// # Panics
    ///
    /// Panics if the cursor still has runnable agents.
    pub fn finish_schedule(&self, cur: &ScheduleCursor, sched: &MemSchedule) -> ExecReport {
        assert!(cur.is_done(), "cursor still has runnable agents");
        let cfg = &self.config;
        let mut energy = EnergyBook::new();
        energy.charge_many("pe.compute", cur.compute_e, cur.compute_n);
        energy.charge_many("pe.stall", cur.stall_e, cur.stall_n);
        let total_time = cur
            .agents
            .iter()
            .map(|a| a.time)
            .fold(Picos::ZERO, Picos::max)
            - cur.start;
        energy.charge("pe.server", cfg.pe.p_stall * total_time);
        let parked = (cfg.pes - 1 - cur.agents.len()) as u64;
        energy.charge("pe.sleep", (cfg.pe.p_sleep * total_time).scaled(parked));

        let mut l1 = CacheLevelStats::default();
        let mut l2 = CacheLevelStats::default();
        for sa in &sched.agents {
            l1.hits += sa.l1_stats.hits;
            l1.misses += sa.l1_stats.misses;
            l1.writebacks += sa.l1_stats.writebacks;
            l2.hits += sa.l2_stats.hits;
            l2.misses += sa.l2_stats.misses;
            l2.writebacks += sa.l2_stats.writebacks;
        }

        ExecReport {
            total_time,
            instructions: cur.agents.iter().map(|a| a.stats.instructions).sum(),
            compute_time: cur.agents.iter().map(|a| a.stats.compute_time).sum(),
            stall_time: cur.agents.iter().map(|a| a.stats.stall_time).sum(),
            pe_stats: cur.agents.iter().map(|a| a.stats).collect(),
            l1,
            l2,
            ipc_series: cur.ipc_series.clone(),
            power_series: cur.power_series.clone(),
            energy,
            bytes_from_mem: cur.bytes_from,
            bytes_to_mem: cur.bytes_to,
            mem_requests: cur.mem_requests,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::InstrBlock;
    use sim_core::energy::EnergyBook;
    use sim_core::mem::Access;

    /// A fixed-latency backend for engine tests.
    struct FixedMem {
        read_lat: Picos,
        write_lat: Picos,
        reads: u64,
        writes: u64,
        announced: usize,
    }

    impl FixedMem {
        fn new(read_lat: Picos, write_lat: Picos) -> Self {
            FixedMem {
                read_lat,
                write_lat,
                reads: 0,
                writes: 0,
                announced: 0,
            }
        }
    }

    impl MemoryBackend for FixedMem {
        fn read(&mut self, at: Picos, _addr: u64, _len: u32) -> Access {
            self.reads += 1;
            Access {
                start: at,
                end: at + self.read_lat,
            }
        }
        fn write(&mut self, at: Picos, _addr: u64, _len: u32) -> Access {
            self.writes += 1;
            Access {
                start: at,
                end: at + self.write_lat,
            }
        }
        fn announce_overwrites(&mut self, _at: Picos, addrs: &[u64]) {
            self.announced += addrs.len();
        }
        fn energy(&self) -> EnergyBook {
            EnergyBook::new()
        }
        fn label(&self) -> &'static str {
            "fixed"
        }
    }

    fn accel() -> Accelerator {
        Accelerator::new(AccelConfig::default())
    }

    fn compute_trace(instrs: u64) -> Trace {
        let mut t = Trace::new();
        t.compute(InstrBlock {
            m: instrs / 4,
            l: instrs / 4,
            s: instrs / 4,
            d: instrs / 4,
        });
        t
    }

    #[test]
    fn pure_compute_has_no_memory_traffic() {
        let mut mem = FixedMem::new(Picos::from_ns(100), Picos::from_ns(100));
        let r = accel().run(&[compute_trace(8_000)], &mut mem);
        assert_eq!(r.mem_requests, 0);
        assert_eq!(r.instructions, 8_000);
        assert!(r.stall_time.is_zero());
        // 8000 instrs / 8-wide = 1000 cycles = 1 us of compute.
        assert_eq!(r.compute_time, Picos::from_us(1));
    }

    #[test]
    fn loads_miss_then_hit() {
        let mut t = Trace::new();
        t.load(0, 8);
        t.load(8, 8); // same L1 line
        let mut mem = FixedMem::new(Picos::from_us(1), Picos::from_us(1));
        let r = accel().run(&[t], &mut mem);
        assert_eq!(r.l1.misses, 1);
        assert_eq!(r.l1.hits, 1);
        assert_eq!(mem.reads, 1); // one L2 fill
        assert!(r.stall_time >= Picos::from_us(1));
    }

    #[test]
    fn slow_memory_dominates_total_time() {
        let mut t = Trace::new();
        for i in 0..64u64 {
            t.load(i * 4096, 8); // every load a fresh L2 line
        }
        let mut fast = FixedMem::new(Picos::from_ns(100), Picos::from_ns(100));
        let mut slow = FixedMem::new(Picos::from_us(50), Picos::from_us(50));
        let rf = accel().run(&[t.clone()], &mut fast);
        let rs = accel().run(&[t], &mut slow);
        assert!(rs.total_time > rf.total_time * 10);
        assert!(rs.total_ipc() < rf.total_ipc());
    }

    #[test]
    fn agents_run_in_parallel() {
        let t = compute_trace(80_000);
        let mut mem = FixedMem::new(Picos::from_ns(100), Picos::from_ns(100));
        let one = accel().run(std::slice::from_ref(&t), &mut mem);
        let mut mem2 = FixedMem::new(Picos::from_ns(100), Picos::from_ns(100));
        let four = accel().run(&[t.clone(), t.clone(), t.clone(), t.clone()], &mut mem2);
        // Four agents do 4x the work in barely more wall-clock time.
        assert_eq!(four.instructions, one.instructions * 4);
        assert!(four.total_time < one.total_time * 2);
    }

    #[test]
    fn dirty_data_flushes_at_completion() {
        let mut t = Trace::new();
        t.store(0, 8);
        let mut mem = FixedMem::new(Picos::from_ns(100), Picos::from_ns(100));
        let r = accel().run(&[t], &mut mem);
        assert!(mem.writes >= 1, "dirty line must reach memory");
        assert!(r.bytes_to_mem >= 256);
    }

    #[test]
    fn store_targets_announced_to_backend() {
        let mut t = Trace::new();
        t.store(0, 32);
        t.store(4096, 32);
        let mut mem = FixedMem::new(Picos::from_ns(100), Picos::from_ns(100));
        accel().run(&[t], &mut mem);
        assert_eq!(mem.announced, 2);
    }

    #[test]
    fn ipc_series_accumulates_all_instructions() {
        let t = compute_trace(4_000);
        let mut mem = FixedMem::new(Picos::from_ns(100), Picos::from_ns(100));
        let r = accel().run(&[t.clone(), t], &mut mem);
        assert_eq!(r.ipc_series.total() as u64, r.instructions);
    }

    #[test]
    fn report_bandwidth_metric() {
        let mut t = Trace::new();
        for i in 0..16u64 {
            t.load(i * 256, 8);
        }
        let mut mem = FixedMem::new(Picos::from_us(1), Picos::from_us(1));
        let r = accel().run(&[t], &mut mem);
        assert!(r.bandwidth_bytes_per_sec() > 0.0);
        assert_eq!(r.bytes_from_mem, 16 * 256);
    }

    #[test]
    #[should_panic(expected = "traces but only")]
    fn too_many_traces_rejected() {
        let t = compute_trace(1);
        let traces = vec![t; 8]; // 8 traces, 7 agents
        let mut mem = FixedMem::new(Picos::ZERO, Picos::ZERO);
        accel().run(&traces, &mut mem);
    }

    #[test]
    #[should_panic(expected = "no kernel traces")]
    fn empty_run_rejected() {
        let mut mem = FixedMem::new(Picos::ZERO, Picos::ZERO);
        accel().run(&[], &mut mem);
    }
}

/// The outcome of a multi-kernel queue run (§IV: the server schedules
/// several downloaded kernels across the agents).
#[derive(Debug, Clone)]
pub struct JobsReport {
    /// Completion instant of each job, relative to the queue start.
    pub job_done: Vec<Picos>,
    /// Per-job execution reports.
    pub reports: Vec<ExecReport>,
}

util::json_struct!(JobsReport { job_done, reports });

impl JobsReport {
    /// Wall-clock completion of the whole queue.
    pub fn total_time(&self) -> Picos {
        self.job_done.iter().copied().fold(Picos::ZERO, Picos::max)
    }

    /// Instructions retired across all jobs.
    pub fn instructions(&self) -> u64 {
        self.reports.iter().map(|r| r.instructions).sum()
    }
}

impl Accelerator {
    /// Runs a queue of kernels back to back on a shared memory backend —
    /// the Figure 10 model where one image carries several applications
    /// and the server dispatches each to the agents in turn, parking them
    /// through the PSC between jobs.
    ///
    /// Backend state (PRAM contents, row buffers, program backlogs)
    /// carries across jobs, so a later kernel sees the earlier kernels'
    /// data and contention — which is the point of keeping everything
    /// resident in the accelerator's PRAM.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is empty or any job exceeds the agent count.
    pub fn run_jobs(
        &self,
        start: Picos,
        jobs: &[Vec<Trace>],
        backend: &mut dyn MemoryBackend,
    ) -> JobsReport {
        assert!(!jobs.is_empty(), "no jobs queued");
        let mut t = start;
        let mut job_done = Vec::with_capacity(jobs.len());
        let mut reports = Vec::with_capacity(jobs.len());
        for job in jobs {
            let report = self.run_at(t, job, backend);
            t += report.total_time;
            job_done.push(t - start);
            reports.push(report);
        }
        JobsReport { job_done, reports }
    }
}

#[cfg(test)]
mod job_tests {
    use super::*;
    use crate::trace::InstrBlock;
    use sim_core::energy::EnergyBook;
    use sim_core::mem::Access;

    struct FlatMem(Picos);
    impl MemoryBackend for FlatMem {
        fn read(&mut self, at: Picos, _a: u64, _l: u32) -> Access {
            Access {
                start: at,
                end: at + self.0,
            }
        }
        fn write(&mut self, at: Picos, _a: u64, _l: u32) -> Access {
            Access {
                start: at,
                end: at + self.0,
            }
        }
        fn energy(&self) -> EnergyBook {
            EnergyBook::new()
        }
        fn label(&self) -> &'static str {
            "flat"
        }
    }

    fn job(instrs: u64) -> Vec<Trace> {
        let mut t = Trace::new();
        t.compute(InstrBlock {
            m: instrs / 4,
            l: instrs / 4,
            s: instrs / 4,
            d: instrs / 4,
        });
        t.load(0, 8);
        vec![t]
    }

    #[test]
    fn jobs_run_back_to_back() {
        let accel = Accelerator::new(AccelConfig::default());
        let mut mem = FlatMem(Picos::from_ns(100));
        let r = accel.run_jobs(Picos::ZERO, &[job(8_000), job(8_000), job(8_000)], &mut mem);
        assert_eq!(r.reports.len(), 3);
        assert_eq!(r.instructions(), 3 * 8_001);
        // Completions are strictly increasing and the total matches.
        assert!(r.job_done.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(r.total_time(), *r.job_done.last().expect("jobs"));
    }

    #[test]
    fn queue_total_is_sum_of_job_times() {
        let accel = Accelerator::new(AccelConfig::default());
        let mut mem = FlatMem(Picos::from_ns(100));
        let r = accel.run_jobs(Picos::ZERO, &[job(4_000), job(12_000)], &mut mem);
        let sum: Picos = r.reports.iter().map(|x| x.total_time).sum();
        assert_eq!(r.total_time(), sum);
    }

    #[test]
    fn jobs_share_backend_contention() {
        // A slow memory charged by job 1 delays job 2's start indirectly
        // through the shared timeline (the PRAM write wall carries over).
        use pram_ctrl::{PramController, SchedulerKind, SubsystemConfig};
        let accel = Accelerator::new(AccelConfig::default());
        let mut pram = PramController::new(SubsystemConfig::small(SchedulerKind::Final, 4));
        let store_job = {
            let mut t = Trace::new();
            for i in 0..64u64 {
                t.store(i * 256, 8);
            }
            vec![t]
        };
        let r = accel.run_jobs(Picos::ZERO, &[store_job.clone(), store_job], &mut pram);
        // Second identical job is no faster than the first (program
        // backlog persists; overwrites cost more than first writes).
        assert!(r.reports[1].total_time >= r.reports[0].total_time / 2);
        assert_eq!(r.reports.len(), 2);
    }

    #[test]
    #[should_panic(expected = "no jobs queued")]
    fn empty_queue_rejected() {
        let accel = Accelerator::new(AccelConfig::default());
        let mut mem = FlatMem(Picos::ZERO);
        accel.run_jobs(Picos::ZERO, &[], &mut mem);
    }
}

#[cfg(test)]
mod xbar_tests {
    use super::*;
    use crate::trace::InstrBlock;
    use crate::xbar::XbarConfig;
    use sim_core::energy::EnergyBook;
    use sim_core::mem::Access;

    struct FastMem;
    impl MemoryBackend for FastMem {
        fn read(&mut self, at: Picos, _a: u64, _l: u32) -> Access {
            Access {
                start: at,
                end: at + Picos::from_ns(50),
            }
        }
        fn write(&mut self, at: Picos, _a: u64, _l: u32) -> Access {
            Access {
                start: at,
                end: at + Picos::from_ns(50),
            }
        }
        fn energy(&self) -> EnergyBook {
            EnergyBook::new()
        }
        fn label(&self) -> &'static str {
            "fast"
        }
    }

    fn miss_heavy_traces(agents: usize) -> Vec<Trace> {
        (0..agents)
            .map(|a| {
                let mut t = Trace::new();
                for i in 0..256u64 {
                    // Distinct L2 lines per agent and iteration.
                    t.load((a as u64) << 32 | (i * 4096), 8);
                    t.compute(InstrBlock::alu(4));
                }
                t
            })
            .collect()
    }

    #[test]
    fn contended_crossbar_slows_heavy_concurrent_misses() {
        let traces = miss_heavy_traces(7);
        let free = Accelerator::new(AccelConfig::default());
        let narrow = Accelerator::new(AccelConfig {
            xbar: Some(XbarConfig {
                ports: 1,
                hop_latency: Picos::from_ns(10),
                bytes_per_sec: 2_000_000_000, // starved port
            }),
            ..Default::default()
        });
        let rf = free.run(&traces, &mut FastMem);
        let rn = narrow.run(&traces, &mut FastMem);
        assert!(
            rn.total_time > rf.total_time,
            "1-port starved crossbar must queue 7 agents: {} vs {}",
            rn.total_time,
            rf.total_time
        );
    }

    #[test]
    fn provisioned_crossbar_matches_fixed_latency_closely() {
        let traces = miss_heavy_traces(3);
        let fixed = Accelerator::new(AccelConfig::default());
        let wide = Accelerator::new(AccelConfig {
            xbar: Some(XbarConfig::default()),
            ..Default::default()
        });
        let rf = fixed.run(&traces, &mut FastMem);
        let rw = wide.run(&traces, &mut FastMem);
        let ratio = rw.total_time.as_ns_f64() / rf.total_time.as_ns_f64();
        assert!(
            (0.8..1.3).contains(&ratio),
            "a well-provisioned crossbar should be near the fixed model: {ratio:.2}"
        );
    }
}

#[cfg(test)]
mod sched_replay_tests {
    use super::*;
    use crate::sched::MemSchedule;
    use crate::trace::InstrBlock;
    use sim_core::energy::EnergyBook;
    use sim_core::mem::Access;
    use util::json::ToJson;

    /// Fixed asymmetric latencies so fills and write-backs are
    /// distinguishable in the timeline.
    struct FixedMem;
    impl MemoryBackend for FixedMem {
        fn read(&mut self, at: Picos, _a: u64, _l: u32) -> Access {
            Access {
                start: at,
                end: at + Picos::from_ns(120),
            }
        }
        fn write(&mut self, at: Picos, _a: u64, _l: u32) -> Access {
            Access {
                start: at,
                end: at + Picos::from_ns(450),
            }
        }
        fn energy(&self) -> EnergyBook {
            EnergyBook::new()
        }
        fn label(&self) -> &'static str {
            "fixed"
        }
    }

    /// Agents with interleaved loads/stores, multi-line accesses (hit
    /// runs longer than one) and an oversized compute block that forces
    /// the packed program's escape path.
    fn stress_traces(agents: usize) -> Vec<Trace> {
        (0..agents)
            .map(|a| {
                let mut t = Trace::new();
                let base = (a as u64) << 24;
                for i in 0..300u64 {
                    t.load(base + (i % 89) * 48, 8);
                    t.compute(InstrBlock::mac(3, 2));
                    if i % 3 == 0 {
                        // Spans several L1 lines: exercises hit runs.
                        t.store(base + (i % 41) * 96, 100);
                    }
                    if i == 150 {
                        // cycles/instrs exceed the packed 31-bit fields.
                        t.compute(InstrBlock::alu(1 << 32));
                    }
                }
                t
            })
            .collect()
    }

    fn report_json(r: &ExecReport) -> String {
        r.to_json().render(false)
    }

    #[test]
    fn replay_is_bit_identical_on_fixed_backend() {
        let accel = Accelerator::new(AccelConfig::default());
        let traces = stress_traces(3);
        let sched = MemSchedule::build(&traces, accel.config().l1, accel.config().l2);

        let direct = accel.run_at(Picos::from_us(7), &traces, &mut FixedMem);
        let replay = accel.run_schedule_at(Picos::from_us(7), &sched, &mut FixedMem);
        assert_eq!(report_json(&direct), report_json(&replay));
    }

    #[test]
    fn replay_is_bit_identical_on_pram_controller() {
        // The real cycle-level controller is stateful (RNG tails, wear
        // counters, selective-erase windows, posted-program queues), so
        // this checks the closed loop: identical request streams must
        // leave two fresh controllers in identical states.
        use pram_ctrl::{PramController, SchedulerKind, SubsystemConfig};
        let accel = Accelerator::new(AccelConfig::default());
        let traces = stress_traces(2);
        let sched = MemSchedule::build(&traces, accel.config().l1, accel.config().l2);

        let mut pram_a = PramController::new(SubsystemConfig::small(SchedulerKind::Final, 4));
        let direct = accel.run_at(Picos::ZERO, &traces, &mut pram_a);
        let mut pram_b = PramController::new(SubsystemConfig::small(SchedulerKind::Final, 4));
        let replay = accel.run_schedule_at(Picos::ZERO, &sched, &mut pram_b);

        assert_eq!(report_json(&direct), report_json(&replay));
        // Backend-side state (energy ledger, counters) matches too.
        assert_eq!(
            pram_a.energy().to_json().render(false),
            pram_b.energy().to_json().render(false)
        );
    }

    #[test]
    fn replay_handles_single_agent_and_empty_compute() {
        let accel = Accelerator::new(AccelConfig::default());
        let mut t = Trace::new();
        t.compute(InstrBlock::alu(64));
        let traces = vec![t];
        let sched = MemSchedule::build(&traces, accel.config().l1, accel.config().l2);
        let direct = accel.run(&traces, &mut FixedMem);
        let replay = accel.run_schedule_at(Picos::ZERO, &sched, &mut FixedMem);
        assert_eq!(report_json(&direct), report_json(&replay));
    }

    #[test]
    #[should_panic(expected = "different cache geometry")]
    fn replay_rejects_mismatched_geometry() {
        let accel = Accelerator::new(AccelConfig::default());
        let traces = stress_traces(1);
        let sched = MemSchedule::build(&traces, CacheConfig::l1_paper(), accel.config().l2);
        accel.run_schedule_at(Picos::ZERO, &sched, &mut FixedMem);
    }

    #[test]
    fn cursor_snapshot_resume_is_byte_identical() {
        // Snapshot cursor + backend mid-run, rebuild both fresh, restore
        // the images, resume — the report, the backend energy and the
        // stream fingerprint must all match the straight run exactly.
        use pram_ctrl::{PramController, SchedulerKind, SubsystemConfig};
        use sim_core::Snapshot;
        let accel = Accelerator::new(AccelConfig::default());
        let traces = stress_traces(2);
        let sched = MemSchedule::build(&traces, accel.config().l1, accel.config().l2);

        // Straight run (counting its arbitration slices).
        let mut pram_a = PramController::new(SubsystemConfig::small(SchedulerKind::Final, 4));
        let mut cur_a = accel.schedule_cursor(Picos::ZERO, &sched, &mut pram_a);
        let mut slices = 0u64;
        while accel.advance_slice(&mut cur_a, &sched, &mut pram_a) {
            slices += 1;
        }
        let straight = accel.finish_schedule(&cur_a, &sched);
        assert!(slices >= 2, "need a mid-run boundary, got {slices} slices");

        // Interrupted run: stop halfway, snapshot, drop.
        let mut pram_b = PramController::new(SubsystemConfig::small(SchedulerKind::Final, 4));
        let mut cur = accel.schedule_cursor(Picos::ZERO, &sched, &mut pram_b);
        for _ in 0..slices / 2 {
            assert!(accel.advance_slice(&mut cur, &sched, &mut pram_b));
        }
        let fp_mid = cur.stream_fingerprint();
        let cur_img = cur.snapshot();
        let backend_img = pram_b.snapshot();
        drop(cur);
        drop(pram_b);

        // Fresh state, restore, resume to completion.
        let mut pram_c = PramController::new(SubsystemConfig::small(SchedulerKind::Final, 4));
        let mut cur2 = accel.schedule_cursor(Picos::ZERO, &sched, &mut pram_c);
        pram_c.restore(&backend_img).expect("backend restore");
        cur2.restore(&cur_img).expect("cursor restore");
        assert_eq!(cur2.stream_fingerprint(), fp_mid);
        while accel.advance_slice(&mut cur2, &sched, &mut pram_c) {}
        let resumed = accel.finish_schedule(&cur2, &sched);

        assert_eq!(report_json(&straight), report_json(&resumed));
        assert_eq!(
            pram_a.energy().to_json().render(false),
            pram_c.energy().to_json().render(false)
        );
    }
}
