//! Kernel images and the `packData`/`pushData`/`unpackData` programming
//! model (Figure 10).
//!
//! The host packs code segments for each application plus shared common
//! code into one image with a metadata header (`packData`), pushes the
//! image bytes to the accelerator's memory (`pushData`), and the server
//! parses the metadata and loads each segment to its target address
//! (`unpackData`) before booting agents at the segment entry points.

use util::bytes::{Bytes, BytesMut};

/// Magic bytes heading every image.
const MAGIC: u32 = 0xD7A7_1E55; // "DRAmLESS"

/// One code segment of an image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Human-readable name ("app0", "shared", …).
    pub name: String,
    /// Accelerator memory address to load the segment at.
    pub load_addr: u64,
    /// Boot entry point (the "magic address" the server writes into the
    /// agent's L2), `None` for non-executable data/shared segments.
    pub entry: Option<u64>,
    /// The code/data bytes.
    pub payload: Bytes,
}

/// Errors produced when parsing an image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseImageError {
    /// The magic header is absent or wrong.
    BadMagic,
    /// The image is shorter than its header claims.
    Truncated,
    /// A segment name is not valid UTF-8.
    BadName,
}

impl std::fmt::Display for ParseImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseImageError::BadMagic => write!(f, "image header magic mismatch"),
            ParseImageError::Truncated => write!(f, "image shorter than header claims"),
            ParseImageError::BadName => write!(f, "segment name is not valid utf-8"),
        }
    }
}

impl std::error::Error for ParseImageError {}

/// A packed kernel image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelImage {
    segments: Vec<Segment>,
}

impl KernelImage {
    /// `packData`: builds an image from segments.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty.
    pub fn pack(segments: Vec<Segment>) -> Self {
        assert!(!segments.is_empty(), "an image needs at least one segment");
        KernelImage { segments }
    }

    /// The segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total payload bytes (what `pushData` must transfer).
    pub fn payload_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.payload.len() as u64).sum()
    }

    /// Serializes to wire bytes.
    ///
    /// Layout: `magic u32 | count u32 | {name_len u16, name, load u64,
    /// entry_present u8, entry u64, len u32, payload}*`.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u32(MAGIC);
        buf.put_u32(self.segments.len() as u32);
        for s in &self.segments {
            buf.put_u16(s.name.len() as u16);
            buf.put_slice(s.name.as_bytes());
            buf.put_u64(s.load_addr);
            buf.put_u8(u8::from(s.entry.is_some()));
            buf.put_u64(s.entry.unwrap_or(0));
            buf.put_u32(s.payload.len() as u32);
            buf.put_slice(&s.payload);
        }
        buf.freeze()
    }

    /// `unpackData`: parses wire bytes back into an image.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseImageError`] when the magic is wrong, the buffer
    /// is truncated, or a name is invalid.
    pub fn from_bytes(mut data: Bytes) -> Result<Self, ParseImageError> {
        if data.remaining() < 8 {
            return Err(ParseImageError::Truncated);
        }
        if data.get_u32() != MAGIC {
            return Err(ParseImageError::BadMagic);
        }
        let count = data.get_u32() as usize;
        let mut segments = Vec::with_capacity(count);
        for _ in 0..count {
            if data.remaining() < 2 {
                return Err(ParseImageError::Truncated);
            }
            let name_len = data.get_u16() as usize;
            if data.remaining() < name_len {
                return Err(ParseImageError::Truncated);
            }
            let name = String::from_utf8(data.copy_to_bytes(name_len).to_vec())
                .map_err(|_| ParseImageError::BadName)?;
            if data.remaining() < 8 + 1 + 8 + 4 {
                return Err(ParseImageError::Truncated);
            }
            let load_addr = data.get_u64();
            let has_entry = data.get_u8() != 0;
            let entry_raw = data.get_u64();
            let len = data.get_u32() as usize;
            if data.remaining() < len {
                return Err(ParseImageError::Truncated);
            }
            segments.push(Segment {
                name,
                load_addr,
                entry: has_entry.then_some(entry_raw),
                payload: data.copy_to_bytes(len),
            });
        }
        Ok(KernelImage { segments })
    }

    /// The executable segments in image order (what the server schedules
    /// onto agents).
    pub fn executables(&self) -> impl Iterator<Item = &Segment> {
        self.segments.iter().filter(|s| s.entry.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image() -> KernelImage {
        KernelImage::pack(vec![
            Segment {
                name: "shared".into(),
                load_addr: 0x1000,
                entry: None,
                payload: Bytes::from_static(b"common-code"),
            },
            Segment {
                name: "app0".into(),
                load_addr: 0x2000,
                entry: Some(0x2000),
                payload: Bytes::from_static(b"kernel-code-0"),
            },
            Segment {
                name: "app1".into(),
                load_addr: 0x4000,
                entry: Some(0x4010),
                payload: Bytes::from_static(b"kernel-code-1!"),
            },
        ])
    }

    #[test]
    fn pack_unpack_round_trip() {
        let img = image();
        let wire = img.to_bytes();
        let back = KernelImage::from_bytes(wire).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn payload_accounting() {
        let img = image();
        assert_eq!(img.payload_bytes(), 11 + 13 + 14);
    }

    #[test]
    fn executables_excludes_shared() {
        let img = image();
        let names: Vec<&str> = img.executables().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["app0", "app1"]);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut wire = image().to_bytes().to_vec();
        wire[0] ^= 0xFF;
        assert_eq!(
            KernelImage::from_bytes(Bytes::from(wire)),
            Err(ParseImageError::BadMagic)
        );
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let wire = image().to_bytes();
        for cut in [0, 4, 9, 12, wire.len() - 1] {
            let sliced = wire.slice(0..cut);
            assert!(
                KernelImage::from_bytes(sliced).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn empty_image_rejected() {
        KernelImage::pack(vec![]);
    }
}
