//! Timing-free memory schedules: the analytic tier's front half.
//!
//! A key structural fact of the execution engine ([`crate::exec`]): each
//! agent's L1/L2 are private and the replacement state advances only on
//! that agent's own op stream — never on timing, never on the backend.
//! So the *sequence* of backend requests an agent will make (which line
//! fills, how many write-backs, where the hits land) is a pure function
//! of `(trace, cache geometry)`. [`MemSchedule::build`] replays the
//! exact cache walk `Accelerator::run_at` performs — including the
//! end-of-kernel flush — without a clock or a backend, and records the
//! per-agent counts plus the ordered fill addresses.
//!
//! The analytic tier ([`dramless::analytic`]) then prices this schedule
//! with calibrated closed-form coefficients instead of simulating every
//! request, and — because the schedule is system-independent — reuses
//! one schedule across every system of a sweep row.
//!
//! [`dramless::analytic`]: https://docs.rs/dramless

use crate::cache::{Cache, CacheConfig, CacheLevelStats};
use crate::trace::{Trace, TraceOp};

/// One backend request in an agent's issue order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendOp {
    /// An L2 line fill (backend read) at this line-aligned address.
    Fill(u64),
    /// A write-back posted through the MCU write queue at this
    /// line-aligned address (L2 evictions plus the end-of-kernel flush).
    Writeback(u64),
}

/// One decoded word of an agent's replay program — one trace op.
///
/// The schedule-driven executor ([`crate::exec::Accelerator::run_schedule_at`])
/// walks these instead of re-decoding the trace and re-simulating the
/// caches on every run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayStep {
    /// A compute block: issue cycles and retired instructions.
    Compute {
        /// Issue cycles the block occupies.
        cycles: u64,
        /// Instructions the block retires.
        instrs: u64,
    },
    /// A memory op (load or store) consuming the next `events` words of
    /// the agent's event stream.
    Mem {
        /// Whether the op is a store (loads otherwise).
        store: bool,
        /// Event-stream words this op consumes.
        events: u64,
    },
}

/// One decoded word of an agent's event stream: what happens, in order,
/// inside one memory op (or the completion flush).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayEvent {
    /// A run of cache hits between backend requests: `l1` L1 hits plus
    /// `l2` fill-path L2 hits. Hits are pure time advances, so a run
    /// collapses to one word — the order of individual hits inside a run
    /// does not affect timing (integer picosecond adds commute).
    Hits {
        /// L1 hits in the run.
        l1: u64,
        /// Fill-path L2 hits in the run.
        l2: u64,
    },
    /// A blocking L2 line fill at this line-aligned address.
    Fill(u64),
    /// A posted write-back at this line-aligned address.
    Writeback(u64),
}

// Packed word layout (one `u64` per step / event). Tag in bits[0:2].
const TAG_COMPUTE: u64 = 0; // cycles in bits[2:33], instrs in bits[33:64]
const TAG_LOAD: u64 = 1; // event-word count in bits[2:64]
const TAG_STORE: u64 = 2; // event-word count in bits[2:64]
const TAG_COMPUTE_BIG: u64 = 3; // index into `big` in bits[2:64]
const TAG_HITS: u64 = 0; // l1 count in bits[2:33], l2 count in bits[33:64]
const TAG_FILL: u64 = 1; // address in bits[2:64]
const TAG_WB: u64 = 2; // address in bits[2:64]
const HALF_BITS: u64 = 31;
const HALF_MASK: u64 = (1 << HALF_BITS) - 1;

#[inline]
fn pack2(tag: u64, lo: u64, hi: u64) -> Option<u64> {
    (lo <= HALF_MASK && hi <= HALF_MASK).then_some(tag | (lo << 2) | (hi << (2 + HALF_BITS)))
}

#[inline]
fn pack_addr(tag: u64, value: u64) -> u64 {
    debug_assert!(value < 1 << 62, "replay payload exceeds 62 bits");
    tag | (value << 2)
}

/// The backend-facing behaviour of one agent's kernel, exactly as the
/// accurate engine would produce it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AgentSchedule {
    /// Instructions retired (compute totals + one per memory op).
    pub instructions: u64,
    /// Issue cycles of all compute blocks.
    pub compute_cycles: u64,
    /// Memory ops that are loads.
    pub loads: u64,
    /// Memory ops that are stores.
    pub stores: u64,
    /// L1 line lookups that hit (each costs `l1_hit_cycles`).
    pub l1_hits: u64,
    /// Fill-path L2 lookups that hit (each costs `l2_hit_cycles`; L2
    /// hits on the L1-victim write-back path are free in the engine).
    pub l2_hits: u64,
    /// Backend requests with addresses, in issue order — kept so
    /// buffered backends' page-cache behaviour (hits, misses, dirty
    /// evictions) can be replayed cheaply.
    pub ops: Vec<BackendOp>,
    /// Exact L1 counters the accurate engine would report.
    pub l1_stats: CacheLevelStats,
    /// Exact L2 counters the accurate engine would report.
    pub l2_stats: CacheLevelStats,
    /// Packed replay program: one word per trace op (decode with
    /// [`AgentSchedule::step`]).
    steps: Vec<u64>,
    /// Packed per-op event stream (decode with [`AgentSchedule::event`]);
    /// each `Mem` step consumes the next `events` words.
    events: Vec<u64>,
    /// Overflow storage for compute blocks whose cycles/instrs exceed the
    /// packed 31-bit fields.
    big: Vec<(u64, u64)>,
    /// Index into `events` where the completion-flush section starts
    /// (fills and write-backs issued after the last trace op).
    flush_start: usize,
    /// `Trace::store_targets(32)` memoized — the engine's per-run
    /// announce-overwrites payload.
    pub store_targets: Vec<u64>,
}

impl AgentSchedule {
    /// Number of replay steps (= trace ops).
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// Decodes replay step `i`.
    #[inline]
    pub fn step(&self, i: usize) -> ReplayStep {
        let w = self.steps[i];
        match w & 3 {
            TAG_COMPUTE => ReplayStep::Compute {
                cycles: (w >> 2) & HALF_MASK,
                instrs: w >> (2 + HALF_BITS),
            },
            TAG_LOAD => ReplayStep::Mem {
                store: false,
                events: w >> 2,
            },
            TAG_STORE => ReplayStep::Mem {
                store: true,
                events: w >> 2,
            },
            _ => {
                let (cycles, instrs) = self.big[(w >> 2) as usize];
                ReplayStep::Compute { cycles, instrs }
            }
        }
    }

    /// Decodes event-stream word `i`.
    #[inline]
    pub fn event(&self, i: usize) -> ReplayEvent {
        let w = self.events[i];
        match w & 3 {
            TAG_HITS => ReplayEvent::Hits {
                l1: (w >> 2) & HALF_MASK,
                l2: w >> (2 + HALF_BITS),
            },
            TAG_FILL => ReplayEvent::Fill(w >> 2),
            TAG_WB => ReplayEvent::Writeback(w >> 2),
            _ => unreachable!("unused event tag"),
        }
    }

    /// Where the completion-flush section of the event stream begins.
    pub fn flush_start(&self) -> usize {
        self.flush_start
    }

    /// Total event-stream words (flush section included).
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    fn push_compute(&mut self, cycles: u64, instrs: u64) {
        let w = pack2(TAG_COMPUTE, cycles, instrs).unwrap_or_else(|| {
            self.big.push((cycles, instrs));
            pack_addr(TAG_COMPUTE_BIG, (self.big.len() - 1) as u64)
        });
        self.steps.push(w);
    }

    fn push_mem(&mut self, store: bool, events: u64) {
        let tag = if store { TAG_STORE } else { TAG_LOAD };
        self.steps.push(pack_addr(tag, events));
    }

    fn push_hits(&mut self, l1: u64, l2: u64) {
        if l1 == 0 && l2 == 0 {
            return;
        }
        let mut l1 = l1;
        let mut l2 = l2;
        // A single op can touch more lines than fit one packed run;
        // split (runs are additive, so the split is timing-neutral).
        while l1 > HALF_MASK || l2 > HALF_MASK {
            let c1 = l1.min(HALF_MASK);
            let c2 = l2.min(HALF_MASK);
            self.events.push(pack2(TAG_HITS, c1, c2).expect("clamped"));
            l1 -= c1;
            l2 -= c2;
        }
        if l1 > 0 || l2 > 0 {
            self.events.push(pack2(TAG_HITS, l1, l2).expect("clamped"));
        }
    }
}

impl AgentSchedule {
    /// Backend reads (L2 line fills) this agent issues.
    pub fn fill_count(&self) -> u64 {
        self.ops
            .iter()
            .filter(|op| matches!(op, BackendOp::Fill(_)))
            .count() as u64
    }

    /// Backend write-backs this agent posts.
    pub fn writeback_count(&self) -> u64 {
        self.ops
            .iter()
            .filter(|op| matches!(op, BackendOp::Writeback(_)))
            .count() as u64
    }

    /// The fill addresses in issue order.
    pub fn fills(&self) -> impl Iterator<Item = u64> + '_ {
        self.ops.iter().filter_map(|op| match op {
            BackendOp::Fill(addr) => Some(*addr),
            BackendOp::Writeback(_) => None,
        })
    }
}

/// Per-agent [`AgentSchedule`]s for one `(traces, cache geometry)` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemSchedule {
    /// One schedule per trace, in agent order.
    pub agents: Vec<AgentSchedule>,
    /// L2 line size — the transfer unit of every fill and write-back.
    pub l2_line: u32,
    /// L1 geometry the schedule was derived under.
    pub l1: CacheConfig,
    /// L2 geometry the schedule was derived under.
    pub l2: CacheConfig,
}

impl MemSchedule {
    /// Replays `traces` through private L1/L2 pairs, mirroring
    /// `Accelerator::run_at`'s walk (write-allocate, write-back LRU,
    /// then the completion flush) with no clock and no backend.
    pub fn build(traces: &[Trace], l1: CacheConfig, l2: CacheConfig) -> Self {
        let agents = traces
            .iter()
            .map(|trace| replay_agent(trace, l1, l2))
            .collect();
        MemSchedule {
            agents,
            l2_line: l2.line,
            l1,
            l2,
        }
    }

    /// Instructions across agents.
    pub fn instructions(&self) -> u64 {
        self.agents.iter().map(|a| a.instructions).sum()
    }

    /// Backend fills across agents.
    pub fn fills(&self) -> u64 {
        self.agents.iter().map(|a| a.fill_count()).sum()
    }

    /// Backend write-backs across agents.
    pub fn writebacks(&self) -> u64 {
        self.agents.iter().map(|a| a.writeback_count()).sum()
    }

    /// Bytes the backend would deliver (fills × line).
    pub fn bytes_from_mem(&self) -> u64 {
        self.fills() * self.l2_line as u64
    }

    /// Bytes the backend would absorb (write-backs × line).
    pub fn bytes_to_mem(&self) -> u64 {
        self.writebacks() * self.l2_line as u64
    }
}

fn replay_agent(trace: &Trace, l1_cfg: CacheConfig, l2_cfg: CacheConfig) -> AgentSchedule {
    let mut l1 = Cache::new(l1_cfg);
    let mut l2 = Cache::new(l2_cfg);
    let mut s = AgentSchedule::default();
    let line_bytes = l1_cfg.line as u64;
    // Pending hit run (L1 + fill-path L2 hits) since the last backend
    // event of the current memory op.
    let mut run_l1 = 0u64;
    let mut run_l2 = 0u64;
    for op in trace.iter() {
        match op {
            TraceOp::Compute(block) => {
                s.instructions += block.total();
                s.compute_cycles += block.cycles();
                s.push_compute(block.cycles(), block.total());
            }
            TraceOp::Load { addr, len } | TraceOp::Store { addr, len } => {
                let is_store = matches!(op, TraceOp::Store { .. });
                s.instructions += 1;
                if is_store {
                    s.stores += 1;
                } else {
                    s.loads += 1;
                }
                let events_before = s.events.len();
                let first = addr / line_bytes;
                let last = (addr + len.max(1) as u64 - 1) / line_bytes;
                for line in (first..=last).map(|l| l * line_bytes) {
                    let l1_out = l1.access(line, is_store);
                    if l1_out.hit {
                        s.l1_hits += 1;
                        run_l1 += 1;
                        continue;
                    }
                    if let Some(wb) = l1_out.writeback {
                        let out = l2.access(wb, true);
                        if let Some(fill) = out.fill {
                            s.push_hits(run_l1, run_l2);
                            (run_l1, run_l2) = (0, 0);
                            s.ops.push(BackendOp::Fill(fill));
                            s.events.push(pack_addr(TAG_FILL, fill));
                        }
                        if let Some(l2wb) = out.writeback {
                            s.push_hits(run_l1, run_l2);
                            (run_l1, run_l2) = (0, 0);
                            s.ops.push(BackendOp::Writeback(l2wb));
                            s.events.push(pack_addr(TAG_WB, l2wb));
                        }
                    }
                    let out = l2.access(line, false);
                    if out.hit {
                        s.l2_hits += 1;
                        run_l2 += 1;
                    } else {
                        if let Some(l2wb) = out.writeback {
                            s.push_hits(run_l1, run_l2);
                            (run_l1, run_l2) = (0, 0);
                            s.ops.push(BackendOp::Writeback(l2wb));
                            s.events.push(pack_addr(TAG_WB, l2wb));
                        }
                        let fill = out.fill.expect("miss always fills");
                        s.push_hits(run_l1, run_l2);
                        (run_l1, run_l2) = (0, 0);
                        s.ops.push(BackendOp::Fill(fill));
                        s.events.push(pack_addr(TAG_FILL, fill));
                    }
                }
                // Trailing hits stay inside this op's event window — an
                // op boundary is a timing boundary (per-op stall energy,
                // arbitration bound check).
                s.push_hits(run_l1, run_l2);
                (run_l1, run_l2) = (0, 0);
                s.push_mem(is_store, (s.events.len() - events_before) as u64);
            }
        }
    }
    // Completion flush: L1 dirty lines land in L2 (possibly filling or
    // evicting), then L2 dirty lines go to memory. No hit costs here —
    // the engine's flush only issues backend requests.
    s.flush_start = s.events.len();
    for addr in l1.flush() {
        let out = l2.access(addr, true);
        if let Some(fill) = out.fill {
            s.ops.push(BackendOp::Fill(fill));
            s.events.push(pack_addr(TAG_FILL, fill));
        }
        if let Some(l2wb) = out.writeback {
            s.ops.push(BackendOp::Writeback(l2wb));
            s.events.push(pack_addr(TAG_WB, l2wb));
        }
    }
    for addr in l2.flush() {
        s.ops.push(BackendOp::Writeback(addr));
        s.events.push(pack_addr(TAG_WB, addr));
    }
    s.l1_stats = *l1.stats();
    s.l2_stats = *l2.stats();
    s.store_targets = trace.store_targets(32);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{AccelConfig, Accelerator};
    use crate::trace::InstrBlock;
    use sim_core::energy::EnergyBook;
    use sim_core::mem::{Access, MemoryBackend};
    use sim_core::time::Picos;

    /// Logs requests while serving a fixed latency.
    struct CountingMem {
        reads: Vec<u64>,
        writes: u64,
        ops: Vec<BackendOp>,
    }

    impl MemoryBackend for CountingMem {
        fn read(&mut self, at: Picos, addr: u64, _len: u32) -> Access {
            self.reads.push(addr);
            self.ops.push(BackendOp::Fill(addr));
            Access {
                start: at,
                end: at + Picos::from_ns(120),
            }
        }
        fn write(&mut self, at: Picos, addr: u64, _len: u32) -> Access {
            self.writes += 1;
            self.ops.push(BackendOp::Writeback(addr));
            Access {
                start: at,
                end: at + Picos::from_ns(180),
            }
        }
        fn energy(&self) -> EnergyBook {
            EnergyBook::new()
        }
        fn label(&self) -> &'static str {
            "counting"
        }
    }

    fn mixed_traces(agents: usize) -> Vec<Trace> {
        (0..agents)
            .map(|a| {
                let mut t = Trace::new();
                for i in 0..400u64 {
                    let base = (a as u64) << 24;
                    t.load(base + (i % 97) * 40, 8);
                    t.compute(InstrBlock::mac(3, 2));
                    if i % 3 == 0 {
                        t.store(base + (i % 53) * 72, 8);
                    }
                }
                t
            })
            .collect()
    }

    #[test]
    fn schedule_matches_engine_counts_exactly() {
        // The replay must agree with the real engine on every count the
        // analytic tier consumes: fills (addresses AND order per agent),
        // write-backs, cache stats, instructions.
        let cfg = AccelConfig::default();
        let traces = mixed_traces(3);
        let sched = MemSchedule::build(&traces, cfg.l1, cfg.l2);

        let mut mem = CountingMem {
            reads: Vec::new(),
            writes: 0,
            ops: Vec::new(),
        };
        let report = Accelerator::new(cfg).run(&traces, &mut mem);

        assert_eq!(sched.instructions(), report.instructions);
        assert_eq!(sched.fills(), mem.reads.len() as u64);
        assert_eq!(sched.writebacks(), mem.writes);
        assert_eq!(sched.bytes_from_mem(), report.bytes_from_mem);
        assert_eq!(sched.bytes_to_mem(), report.bytes_to_mem);
        let l1_hits: u64 = sched.agents.iter().map(|a| a.l1_stats.hits).sum();
        let l1_misses: u64 = sched.agents.iter().map(|a| a.l1_stats.misses).sum();
        let l2_hits: u64 = sched.agents.iter().map(|a| a.l2_stats.hits).sum();
        assert_eq!(l1_hits, report.l1.hits);
        assert_eq!(l1_misses, report.l1.misses);
        assert_eq!(l2_hits, report.l2.hits);
        for (i, a) in sched.agents.iter().enumerate() {
            assert_eq!(a.loads, report.pe_stats[i].loads, "agent {i}");
            assert_eq!(a.stores, report.pe_stats[i].stores, "agent {i}");
            assert_eq!(a.compute_cycles, report.pe_stats[i].compute_cycles);
        }
        // Single-agent run: the engine's full request stream — fills and
        // write-backs, interleaved with addresses — is the schedule's.
        let solo = mixed_traces(1);
        let sched1 = MemSchedule::build(&solo, cfg.l1, cfg.l2);
        let mut mem1 = CountingMem {
            reads: Vec::new(),
            writes: 0,
            ops: Vec::new(),
        };
        Accelerator::new(cfg).run(&solo, &mut mem1);
        assert_eq!(sched1.agents[0].ops, mem1.ops);
    }

    #[test]
    fn schedule_is_backend_independent() {
        // Same traces, same geometry — bit-identical schedule regardless
        // of anything else (this is what makes cross-system reuse sound).
        let cfg = AccelConfig::default();
        let traces = mixed_traces(2);
        let a = MemSchedule::build(&traces, cfg.l1, cfg.l2);
        let b = MemSchedule::build(&traces, cfg.l1, cfg.l2);
        assert_eq!(a, b);
    }

    #[test]
    fn pure_compute_schedule_has_no_memory() {
        let mut t = Trace::new();
        t.compute(InstrBlock::alu(100));
        let s = MemSchedule::build(&[t], CacheConfig::l1(), CacheConfig::l2());
        assert_eq!(s.fills(), 0);
        assert_eq!(s.writebacks(), 0);
        assert_eq!(s.instructions(), 100);
    }
}
