//! Timing-free memory schedules: the analytic tier's front half.
//!
//! A key structural fact of the execution engine ([`crate::exec`]): each
//! agent's L1/L2 are private and the replacement state advances only on
//! that agent's own op stream — never on timing, never on the backend.
//! So the *sequence* of backend requests an agent will make (which line
//! fills, how many write-backs, where the hits land) is a pure function
//! of `(trace, cache geometry)`. [`MemSchedule::build`] replays the
//! exact cache walk `Accelerator::run_at` performs — including the
//! end-of-kernel flush — without a clock or a backend, and records the
//! per-agent counts plus the ordered fill addresses.
//!
//! The analytic tier ([`dramless::analytic`]) then prices this schedule
//! with calibrated closed-form coefficients instead of simulating every
//! request, and — because the schedule is system-independent — reuses
//! one schedule across every system of a sweep row.
//!
//! [`dramless::analytic`]: https://docs.rs/dramless

use crate::cache::{Cache, CacheConfig, CacheLevelStats};
use crate::trace::{Trace, TraceOp};

/// One backend request in an agent's issue order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendOp {
    /// An L2 line fill (backend read) at this line-aligned address.
    Fill(u64),
    /// A write-back posted through the MCU write queue at this
    /// line-aligned address (L2 evictions plus the end-of-kernel flush).
    Writeback(u64),
}

/// The backend-facing behaviour of one agent's kernel, exactly as the
/// accurate engine would produce it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AgentSchedule {
    /// Instructions retired (compute totals + one per memory op).
    pub instructions: u64,
    /// Issue cycles of all compute blocks.
    pub compute_cycles: u64,
    /// Memory ops that are loads.
    pub loads: u64,
    /// Memory ops that are stores.
    pub stores: u64,
    /// L1 line lookups that hit (each costs `l1_hit_cycles`).
    pub l1_hits: u64,
    /// Fill-path L2 lookups that hit (each costs `l2_hit_cycles`; L2
    /// hits on the L1-victim write-back path are free in the engine).
    pub l2_hits: u64,
    /// Backend requests with addresses, in issue order — kept so
    /// buffered backends' page-cache behaviour (hits, misses, dirty
    /// evictions) can be replayed cheaply.
    pub ops: Vec<BackendOp>,
    /// Exact L1 counters the accurate engine would report.
    pub l1_stats: CacheLevelStats,
    /// Exact L2 counters the accurate engine would report.
    pub l2_stats: CacheLevelStats,
}

impl AgentSchedule {
    /// Backend reads (L2 line fills) this agent issues.
    pub fn fill_count(&self) -> u64 {
        self.ops
            .iter()
            .filter(|op| matches!(op, BackendOp::Fill(_)))
            .count() as u64
    }

    /// Backend write-backs this agent posts.
    pub fn writeback_count(&self) -> u64 {
        self.ops
            .iter()
            .filter(|op| matches!(op, BackendOp::Writeback(_)))
            .count() as u64
    }

    /// The fill addresses in issue order.
    pub fn fills(&self) -> impl Iterator<Item = u64> + '_ {
        self.ops.iter().filter_map(|op| match op {
            BackendOp::Fill(addr) => Some(*addr),
            BackendOp::Writeback(_) => None,
        })
    }
}

/// Per-agent [`AgentSchedule`]s for one `(traces, cache geometry)` pair.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemSchedule {
    /// One schedule per trace, in agent order.
    pub agents: Vec<AgentSchedule>,
    /// L2 line size — the transfer unit of every fill and write-back.
    pub l2_line: u32,
}

impl MemSchedule {
    /// Replays `traces` through private L1/L2 pairs, mirroring
    /// `Accelerator::run_at`'s walk (write-allocate, write-back LRU,
    /// then the completion flush) with no clock and no backend.
    pub fn build(traces: &[Trace], l1: CacheConfig, l2: CacheConfig) -> Self {
        let agents = traces
            .iter()
            .map(|trace| replay_agent(trace, l1, l2))
            .collect();
        MemSchedule {
            agents,
            l2_line: l2.line,
        }
    }

    /// Instructions across agents.
    pub fn instructions(&self) -> u64 {
        self.agents.iter().map(|a| a.instructions).sum()
    }

    /// Backend fills across agents.
    pub fn fills(&self) -> u64 {
        self.agents.iter().map(|a| a.fill_count()).sum()
    }

    /// Backend write-backs across agents.
    pub fn writebacks(&self) -> u64 {
        self.agents.iter().map(|a| a.writeback_count()).sum()
    }

    /// Bytes the backend would deliver (fills × line).
    pub fn bytes_from_mem(&self) -> u64 {
        self.fills() * self.l2_line as u64
    }

    /// Bytes the backend would absorb (write-backs × line).
    pub fn bytes_to_mem(&self) -> u64 {
        self.writebacks() * self.l2_line as u64
    }
}

fn replay_agent(trace: &Trace, l1_cfg: CacheConfig, l2_cfg: CacheConfig) -> AgentSchedule {
    let mut l1 = Cache::new(l1_cfg);
    let mut l2 = Cache::new(l2_cfg);
    let mut s = AgentSchedule::default();
    let line_bytes = l1_cfg.line as u64;
    for op in trace.iter() {
        match op {
            TraceOp::Compute(block) => {
                s.instructions += block.total();
                s.compute_cycles += block.cycles();
            }
            TraceOp::Load { addr, len } | TraceOp::Store { addr, len } => {
                let is_store = matches!(op, TraceOp::Store { .. });
                s.instructions += 1;
                if is_store {
                    s.stores += 1;
                } else {
                    s.loads += 1;
                }
                let first = addr / line_bytes;
                let last = (addr + len.max(1) as u64 - 1) / line_bytes;
                for line in (first..=last).map(|l| l * line_bytes) {
                    let l1_out = l1.access(line, is_store);
                    if l1_out.hit {
                        s.l1_hits += 1;
                        continue;
                    }
                    if let Some(wb) = l1_out.writeback {
                        let out = l2.access(wb, true);
                        if let Some(fill) = out.fill {
                            s.ops.push(BackendOp::Fill(fill));
                        }
                        if let Some(l2wb) = out.writeback {
                            s.ops.push(BackendOp::Writeback(l2wb));
                        }
                    }
                    let out = l2.access(line, false);
                    if out.hit {
                        s.l2_hits += 1;
                    } else {
                        if let Some(l2wb) = out.writeback {
                            s.ops.push(BackendOp::Writeback(l2wb));
                        }
                        s.ops
                            .push(BackendOp::Fill(out.fill.expect("miss always fills")));
                    }
                }
            }
        }
    }
    // Completion flush: L1 dirty lines land in L2 (possibly filling or
    // evicting), then L2 dirty lines go to memory.
    for addr in l1.flush() {
        let out = l2.access(addr, true);
        if let Some(fill) = out.fill {
            s.ops.push(BackendOp::Fill(fill));
        }
        if let Some(l2wb) = out.writeback {
            s.ops.push(BackendOp::Writeback(l2wb));
        }
    }
    for addr in l2.flush() {
        s.ops.push(BackendOp::Writeback(addr));
    }
    s.l1_stats = *l1.stats();
    s.l2_stats = *l2.stats();
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{AccelConfig, Accelerator};
    use crate::trace::InstrBlock;
    use sim_core::energy::EnergyBook;
    use sim_core::mem::{Access, MemoryBackend};
    use sim_core::time::Picos;

    /// Logs requests while serving a fixed latency.
    struct CountingMem {
        reads: Vec<u64>,
        writes: u64,
        ops: Vec<BackendOp>,
    }

    impl MemoryBackend for CountingMem {
        fn read(&mut self, at: Picos, addr: u64, _len: u32) -> Access {
            self.reads.push(addr);
            self.ops.push(BackendOp::Fill(addr));
            Access {
                start: at,
                end: at + Picos::from_ns(120),
            }
        }
        fn write(&mut self, at: Picos, addr: u64, _len: u32) -> Access {
            self.writes += 1;
            self.ops.push(BackendOp::Writeback(addr));
            Access {
                start: at,
                end: at + Picos::from_ns(180),
            }
        }
        fn energy(&self) -> EnergyBook {
            EnergyBook::new()
        }
        fn label(&self) -> &'static str {
            "counting"
        }
    }

    fn mixed_traces(agents: usize) -> Vec<Trace> {
        (0..agents)
            .map(|a| {
                let mut t = Trace::new();
                for i in 0..400u64 {
                    let base = (a as u64) << 24;
                    t.load(base + (i % 97) * 40, 8);
                    t.compute(InstrBlock::mac(3, 2));
                    if i % 3 == 0 {
                        t.store(base + (i % 53) * 72, 8);
                    }
                }
                t
            })
            .collect()
    }

    #[test]
    fn schedule_matches_engine_counts_exactly() {
        // The replay must agree with the real engine on every count the
        // analytic tier consumes: fills (addresses AND order per agent),
        // write-backs, cache stats, instructions.
        let cfg = AccelConfig::default();
        let traces = mixed_traces(3);
        let sched = MemSchedule::build(&traces, cfg.l1, cfg.l2);

        let mut mem = CountingMem {
            reads: Vec::new(),
            writes: 0,
            ops: Vec::new(),
        };
        let report = Accelerator::new(cfg).run(&traces, &mut mem);

        assert_eq!(sched.instructions(), report.instructions);
        assert_eq!(sched.fills(), mem.reads.len() as u64);
        assert_eq!(sched.writebacks(), mem.writes);
        assert_eq!(sched.bytes_from_mem(), report.bytes_from_mem);
        assert_eq!(sched.bytes_to_mem(), report.bytes_to_mem);
        let l1_hits: u64 = sched.agents.iter().map(|a| a.l1_stats.hits).sum();
        let l1_misses: u64 = sched.agents.iter().map(|a| a.l1_stats.misses).sum();
        let l2_hits: u64 = sched.agents.iter().map(|a| a.l2_stats.hits).sum();
        assert_eq!(l1_hits, report.l1.hits);
        assert_eq!(l1_misses, report.l1.misses);
        assert_eq!(l2_hits, report.l2.hits);
        for (i, a) in sched.agents.iter().enumerate() {
            assert_eq!(a.loads, report.pe_stats[i].loads, "agent {i}");
            assert_eq!(a.stores, report.pe_stats[i].stores, "agent {i}");
            assert_eq!(a.compute_cycles, report.pe_stats[i].compute_cycles);
        }
        // Single-agent run: the engine's full request stream — fills and
        // write-backs, interleaved with addresses — is the schedule's.
        let solo = mixed_traces(1);
        let sched1 = MemSchedule::build(&solo, cfg.l1, cfg.l2);
        let mut mem1 = CountingMem {
            reads: Vec::new(),
            writes: 0,
            ops: Vec::new(),
        };
        Accelerator::new(cfg).run(&solo, &mut mem1);
        assert_eq!(sched1.agents[0].ops, mem1.ops);
    }

    #[test]
    fn schedule_is_backend_independent() {
        // Same traces, same geometry — bit-identical schedule regardless
        // of anything else (this is what makes cross-system reuse sound).
        let cfg = AccelConfig::default();
        let traces = mixed_traces(2);
        let a = MemSchedule::build(&traces, cfg.l1, cfg.l2);
        let b = MemSchedule::build(&traces, cfg.l1, cfg.l2);
        assert_eq!(a, b);
    }

    #[test]
    fn pure_compute_schedule_has_no_memory() {
        let mut t = Trace::new();
        t.compute(InstrBlock::alu(100));
        let s = MemSchedule::build(&[t], CacheConfig::l1(), CacheConfig::l2());
        assert_eq!(s.fills(), 0);
        assert_eq!(s.writebacks(), 0);
        assert_eq!(s.instructions(), 100);
    }
}
