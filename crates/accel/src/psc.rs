//! The power/sleep controller (PSC).
//!
//! §III-B / Figure 9b: the server parks idle agents in a sleep state,
//! stores the kernel's boot address into the target agent's L2, and
//! revokes (wakes) it through the PSC. The PSC tracks each PE's power
//! state and charges the wake/sleep transition latencies.

use sim_core::time::Picos;

/// A PE power state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PeState {
    /// Clock-gated, waiting for a boot address.
    #[default]
    Sleep,
    /// Executing (or stalled on memory).
    Active,
}

util::json_unit_enum!(PeState { Sleep, Active });

/// Transition timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PscParams {
    /// Sleep → active: PLL relock + boot-address fetch.
    pub wake: Picos,
    /// Active → sleep: state retention entry.
    pub sleep: Picos,
}

util::json_struct!(PscParams { wake, sleep });

impl Default for PscParams {
    fn default() -> Self {
        PscParams {
            wake: Picos::from_us(12),
            sleep: Picos::from_us(2),
        }
    }
}

/// The PSC: per-PE state machine.
#[derive(Debug, Clone)]
pub struct PowerSleepController {
    params: PscParams,
    states: Vec<PeState>,
    transitions: u64,
}

util::json_struct!(PowerSleepController {
    params,
    states,
    transitions
});

sim_core::snapshot_via_json!(PowerSleepController, "accel/psc", 1);

impl PowerSleepController {
    /// Creates a PSC for `pes` elements, all asleep.
    ///
    /// # Panics
    ///
    /// Panics if `pes` is zero.
    pub fn new(params: PscParams, pes: usize) -> Self {
        assert!(pes > 0, "PSC needs at least one PE");
        PowerSleepController {
            params,
            states: vec![PeState::Sleep; pes],
            transitions: 0,
        }
    }

    /// Current state of PE `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn state(&self, i: usize) -> PeState {
        self.states[i]
    }

    /// Total transitions performed.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Wakes PE `i` at time `at`; returns when it can execute. Waking an
    /// already-active PE is a no-op.
    pub fn wake(&mut self, at: Picos, i: usize) -> Picos {
        if self.states[i] == PeState::Active {
            return at;
        }
        self.states[i] = PeState::Active;
        self.transitions += 1;
        at + self.params.wake
    }

    /// Puts PE `i` to sleep at `at`; returns when the state is retained.
    pub fn sleep(&mut self, at: Picos, i: usize) -> Picos {
        if self.states[i] == PeState::Sleep {
            return at;
        }
        self.states[i] = PeState::Sleep;
        self.transitions += 1;
        at + self.params.sleep
    }

    /// Number of active PEs.
    pub fn active_count(&self) -> usize {
        self.states
            .iter()
            .filter(|s| **s == PeState::Active)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_asleep_initially() {
        let psc = PowerSleepController::new(PscParams::default(), 8);
        assert_eq!(psc.active_count(), 0);
        assert_eq!(psc.state(3), PeState::Sleep);
    }

    #[test]
    fn wake_charges_latency_once() {
        let mut psc = PowerSleepController::new(PscParams::default(), 2);
        let t = psc.wake(Picos::ZERO, 0);
        assert_eq!(t, Picos::from_us(12));
        // Re-waking is free.
        assert_eq!(psc.wake(t, 0), t);
        assert_eq!(psc.transitions(), 1);
    }

    #[test]
    fn sleep_wake_round_trip() {
        let mut psc = PowerSleepController::new(PscParams::default(), 1);
        let t = psc.wake(Picos::ZERO, 0);
        let t = psc.sleep(t, 0);
        assert_eq!(psc.state(0), PeState::Sleep);
        let t2 = psc.wake(t, 0);
        assert_eq!(t2 - t, Picos::from_us(12));
        assert_eq!(psc.transitions(), 3);
    }

    #[test]
    #[should_panic]
    fn out_of_range_pe_panics() {
        let psc = PowerSleepController::new(PscParams::default(), 2);
        psc.state(5);
    }
}
