#![warn(missing_docs)]

//! # accel
//!
//! The multi-core accelerator model of Figure 6: eight 1 GHz processing
//! elements (PEs), each with two `.M`/`.L`/`.S`/`.D` functional-unit
//! pairs, private L1/L2 caches, a crossbar to the memory controller unit
//! (MCU), and a power/sleep controller (PSC). One PE acts as the
//! **server** — it downloads kernel images, schedules the other PEs
//! (**agents**) and owns the MCU; the agents execute kernels and reach
//! memory through plain load/store instructions.
//!
//! The crate is workload-agnostic: kernels arrive as instruction/memory
//! [`trace`]s (produced by the [`workloads`] crate from real
//! computations) and memory is any [`sim_core::MemoryBackend`] — the PRAM
//! controller for DRAM-less, a buffered flash store for Integrated-*,
//! plain DRAM for the heterogeneous systems, and so on.
//!
//! [`workloads`]: https://docs.rs/workloads

pub mod cache;
pub mod exec;
pub mod kernel;
pub mod pe;
pub mod psc;
pub mod sched;
pub mod trace;
pub mod xbar;

pub use cache::{Cache, CacheConfig, CacheLevelStats};
pub use exec::{AccelConfig, Accelerator, ExecReport};
pub use kernel::{KernelImage, Segment};
pub use pe::{PeConfig, PeStats};
pub use psc::{PeState, PowerSleepController};
pub use sched::{AgentSchedule, MemSchedule};
pub use trace::{InstrBlock, Trace, TraceOp};
pub use xbar::{Crossbar, XbarConfig};
