//! Processing-element parameters and statistics.

use sim_core::energy::Watts;
use sim_core::time::{Freq, Picos};

/// Static parameters of one PE (TMS320C66x-class core, Figure 6b).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeConfig {
    /// Core clock (the paper's platform runs 1 GHz cores).
    pub clock: Freq,
    /// L1 hit latency in core cycles.
    pub l1_hit_cycles: u64,
    /// L2 hit latency in core cycles.
    pub l2_hit_cycles: u64,
    /// Crossbar + MCU traversal added to every off-PE memory request.
    pub xbar_latency: Picos,
    /// Power while retiring instructions.
    pub p_active: Watts,
    /// Power while stalled on memory.
    pub p_stall: Watts,
    /// Power in PSC sleep state.
    pub p_sleep: Watts,
}

util::json_struct!(PeConfig {
    clock,
    l1_hit_cycles,
    l2_hit_cycles,
    xbar_latency,
    p_active,
    p_stall,
    p_sleep,
});

impl Default for PeConfig {
    fn default() -> Self {
        PeConfig {
            clock: Freq::from_ghz(1),
            l1_hit_cycles: 1,
            l2_hit_cycles: 12,
            xbar_latency: Picos::from_ns(30),
            p_active: Watts::from_w(1.15),
            p_stall: Watts::from_w(0.40),
            p_sleep: Watts::from_mw(25.0),
        }
    }
}

/// Per-PE execution counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles spent computing.
    pub compute_cycles: u64,
    /// Time stalled on memory (L1 miss service).
    pub stall_time: Picos,
    /// Time computing.
    pub compute_time: Picos,
    /// Loads issued.
    pub loads: u64,
    /// Stores issued.
    pub stores: u64,
}

util::json_struct!(PeStats {
    instructions,
    compute_cycles,
    stall_time,
    compute_time,
    loads,
    stores,
});

impl PeStats {
    /// Average IPC over the PE's busy window.
    pub fn ipc(&self) -> f64 {
        let total = self.compute_time + self.stall_time;
        if total.is_zero() {
            0.0
        } else {
            // instructions / cycles, with cycles = busy time at 1 GHz.
            self.instructions as f64 / (total.as_ns_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_platform() {
        let c = PeConfig::default();
        assert_eq!(c.clock.cycle(), Picos::from_ns(1));
        assert!(c.p_active.as_w() > c.p_stall.as_w());
        assert!(c.p_stall.as_w() > c.p_sleep.as_w());
    }

    #[test]
    fn ipc_computation() {
        let s = PeStats {
            instructions: 8_000,
            compute_time: Picos::from_us(1),
            stall_time: Picos::from_us(3),
            ..Default::default()
        };
        // 8000 instructions over 4000 ns of 1 GHz cycles = 2 IPC.
        assert!((s.ipc() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn idle_pe_has_zero_ipc() {
        assert_eq!(PeStats::default().ipc(), 0.0);
    }
}
