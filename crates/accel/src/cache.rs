//! Set-associative write-back caches (each PE's private L1 and L2).
//!
//! Figure 6: every PE owns a 64 KB L1 and a 512 KB L2; L2 misses leave
//! the PE through the crossbar to the server's MCU. The model is a
//! classic LRU set-associative tag array with write-allocate,
//! write-back semantics — evicted dirty lines surface as explicit
//! write-backs the execution engine forwards to the memory backend.

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: u32,
    /// Line size in bytes (power of two).
    pub line: u32,
    /// Associativity.
    pub ways: u32,
}

util::json_struct!(CacheConfig {
    capacity,
    line,
    ways
});

impl CacheConfig {
    /// The default simulation L1: scaled down from the platform's 64 KB
    /// split I/D cache in proportion to the reduced workload footprints,
    /// so datasets stream through the hierarchy as they do at paper
    /// scale (≥10× Polybench against 64 KB/512 KB caches).
    pub const fn l1() -> Self {
        CacheConfig {
            capacity: 4 * 1024,
            line: 64,
            ways: 2,
        }
    }

    /// The default simulation L2 (scaled; see [`CacheConfig::l1`]);
    /// 256 B lines = two 128 B channel fetches, §III-B's "512 bytes per
    /// channel" prefetch group spanning both channels.
    pub const fn l2() -> Self {
        CacheConfig {
            capacity: 16 * 1024,
            line: 256,
            ways: 4,
        }
    }

    /// The physical platform's L1 data cache (Table/§VI: 64 KB I+D).
    pub const fn l1_paper() -> Self {
        CacheConfig {
            capacity: 32 * 1024,
            line: 64,
            ways: 4,
        }
    }

    /// The physical platform's 512 KB L2.
    pub const fn l2_paper() -> Self {
        CacheConfig {
            capacity: 512 * 1024,
            line: 256,
            ways: 8,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.capacity / (self.line * self.ways)
    }
}

/// Hit/miss counters for one level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheLevelStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

util::json_struct!(CacheLevelStats {
    hits,
    misses,
    writebacks
});

impl CacheLevelStats {
    /// Miss ratio (0 when no lookups).
    pub fn miss_ratio(&self) -> f64 {
        let t = self.hits + self.misses;
        if t == 0 {
            0.0
        } else {
            self.misses as f64 / t as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// The outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the line was already resident.
    pub hit: bool,
    /// Address of a dirty line evicted to make room, if any.
    pub writeback: Option<u64>,
    /// Line-aligned address that must be fetched from below on a miss.
    pub fill: Option<u64>,
}

/// One cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    clock: u64,
    stats: CacheLevelStats,
}

impl Cache {
    /// Builds an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets or non-power-of-two
    /// line size).
    pub fn new(config: CacheConfig) -> Self {
        assert!(
            config.line.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(config.sets() > 0, "cache must have at least one set");
        Cache {
            lines: vec![
                Line {
                    tag: 0,
                    valid: false,
                    dirty: false,
                    lru: 0
                };
                (config.sets() * config.ways) as usize
            ],
            config,
            clock: 0,
            stats: CacheLevelStats::default(),
        }
    }

    /// The geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Counters.
    pub fn stats(&self) -> &CacheLevelStats {
        &self.stats
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr / self.config.line as u64) % self.config.sets() as u64) as usize
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr / self.config.line as u64 / self.config.sets() as u64
    }

    fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.config.line as u64 - 1)
    }

    /// Accesses `addr`; `write` marks the line dirty. The caller is
    /// responsible for acting on `writeback`/`fill`.
    pub fn access(&mut self, addr: u64, write: bool) -> AccessOutcome {
        self.clock += 1;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let ways = self.config.ways as usize;
        let base = set * ways;
        // Hit path.
        for i in base..base + ways {
            if self.lines[i].valid && self.lines[i].tag == tag {
                self.lines[i].lru = self.clock;
                self.lines[i].dirty |= write;
                self.stats.hits += 1;
                return AccessOutcome {
                    hit: true,
                    writeback: None,
                    fill: None,
                };
            }
        }
        // Miss: choose victim (invalid first, else LRU).
        self.stats.misses += 1;
        let victim = (base..base + ways)
            .min_by_key(|&i| (self.lines[i].valid, self.lines[i].lru))
            .expect("non-zero associativity");
        let mut writeback = None;
        if self.lines[victim].valid && self.lines[victim].dirty {
            let va = (self.lines[victim].tag * self.config.sets() as u64 + set as u64)
                * self.config.line as u64;
            writeback = Some(va);
            self.stats.writebacks += 1;
        }
        self.lines[victim] = Line {
            tag,
            valid: true,
            dirty: write,
            lru: self.clock,
        };
        AccessOutcome {
            hit: false,
            writeback,
            fill: Some(self.line_addr(addr)),
        }
    }

    /// Drains every dirty line (end-of-kernel flush), returning their
    /// addresses.
    pub fn flush(&mut self) -> Vec<u64> {
        let mut out = Vec::new();
        let sets = self.config.sets() as u64;
        let ways = self.config.ways as usize;
        for set in 0..sets {
            for w in 0..ways {
                let i = set as usize * ways + w;
                if self.lines[i].valid && self.lines[i].dirty {
                    out.push((self.lines[i].tag * sets + set) * self.config.line as u64);
                    self.lines[i].dirty = false;
                }
            }
        }
        out
    }

    /// Line-aligned spans covering `[addr, addr+len)` — one access per
    /// line touched.
    pub fn lines_touched(&self, addr: u64, len: u32) -> impl Iterator<Item = u64> + '_ {
        let line = self.config.line as u64;
        let first = addr / line;
        let last = (addr + len.max(1) as u64 - 1) / line;
        (first..=last).map(move |l| l * line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64 B = 512 B.
        Cache::new(CacheConfig {
            capacity: 512,
            line: 64,
            ways: 2,
        })
    }

    #[test]
    fn geometry() {
        assert_eq!(CacheConfig::l1().sets(), 32);
        assert_eq!(CacheConfig::l2().sets(), 16);
        assert_eq!(CacheConfig::l1_paper().sets(), 128);
        assert_eq!(CacheConfig::l2_paper().sets(), 256);
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny();
        let a = c.access(0x100, false);
        assert!(!a.hit);
        assert_eq!(a.fill, Some(0x100));
        let b = c.access(0x130, false); // same 64 B line
        assert!(b.hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_in_set() {
        let mut c = tiny();
        // Three lines mapping to set 0 (stride = line * sets = 256).
        c.access(0, false);
        c.access(256, false);
        c.access(0, false); // refresh line 0
        c.access(512, false); // evicts 256 (LRU)
        assert!(c.access(0, false).hit);
        assert!(!c.access(256, false).hit);
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let mut c = tiny();
        c.access(0, true); // dirty
        c.access(256, false);
        let out = c.access(512, false); // evicts line 0
        assert_eq!(out.writeback, Some(0));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn flush_returns_all_dirty_lines_once() {
        let mut c = tiny();
        c.access(0, true);
        c.access(64, true);
        c.access(128, false);
        let mut dirty = c.flush();
        dirty.sort_unstable();
        assert_eq!(dirty, vec![0, 64]);
        assert!(c.flush().is_empty());
    }

    #[test]
    fn lines_touched_spans() {
        let c = tiny();
        let lines: Vec<u64> = c.lines_touched(60, 10).collect();
        assert_eq!(lines, vec![0, 64]);
        let lines: Vec<u64> = c.lines_touched(64, 64).collect();
        assert_eq!(lines, vec![64]);
    }

    #[test]
    fn write_then_read_same_line_stays_dirty() {
        let mut c = tiny();
        c.access(0, true);
        c.access(0, false);
        // Force eviction; must still write back.
        c.access(256, false);
        let out = c.access(512, false);
        assert_eq!(out.writeback, Some(0));
    }
}
