//! Kernel execution traces.
//!
//! A [`Trace`] is what a compiled kernel looks like to the performance
//! model: alternating compute blocks (instruction counts per functional
//! unit class) and explicit memory operations with addresses. The
//! [`workloads`] crate produces traces by *actually running* each
//! Polybench kernel with instrumented array accesses, so the address
//! streams and read/write mixes are the real ones.
//!
//! Traces are the dominant allocation of a sweep, so the op stream is
//! stored *packed*: one tag byte per op, memory addresses as
//! zigzag-varint deltas against the previous address, lengths elided
//! when they repeat (they almost always do — kernels touch fixed-width
//! elements). That turns the ~24 bytes of an enum-in-a-`Vec` into
//! ~2–4 bytes per op. Consumers decode on iterate ([`Trace::iter`]) —
//! nothing ever materializes a `Vec<TraceOp>` per cell.
//!
//! [`workloads`]: https://docs.rs/workloads

/// Instruction counts of one compute block, by functional-unit class
/// (Figure 6b: a PE has two of each).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstrBlock {
    /// `.M` (multiply / DSP-intrinsic MAC) instructions.
    pub m: u64,
    /// `.L` (logical / compare) instructions.
    pub l: u64,
    /// `.S` (general arithmetic / branch) instructions.
    pub s: u64,
    /// `.D` (address generation / load-store assist) instructions.
    pub d: u64,
}

util::json_struct!(InstrBlock { m, l, s, d });

impl InstrBlock {
    /// A block of `n` balanced ALU instructions.
    pub fn alu(n: u64) -> Self {
        InstrBlock {
            m: 0,
            l: n / 2,
            s: n - n / 2,
            d: 0,
        }
    }

    /// A block of multiply-accumulate work with its address math.
    pub fn mac(muls: u64, addr_ops: u64) -> Self {
        InstrBlock {
            m: muls,
            l: 0,
            s: addr_ops / 2,
            d: addr_ops - addr_ops / 2,
        }
    }

    /// Total instructions in the block.
    pub fn total(&self) -> u64 {
        self.m + self.l + self.s + self.d
    }

    /// Issue cycles on a PE with two units per class (VLIW: all four
    /// classes issue in parallel, two instructions per class per cycle).
    pub fn cycles(&self) -> u64 {
        let per = |n: u64| n.div_ceil(2);
        per(self.m)
            .max(per(self.l))
            .max(per(self.s))
            .max(per(self.d))
            .max(
                // A non-empty block takes at least a cycle.
                u64::from(self.total() > 0),
            )
    }

    /// Merges another block into this one.
    pub fn merge(&mut self, other: InstrBlock) {
        self.m += other.m;
        self.l += other.l;
        self.s += other.s;
        self.d += other.d;
    }
}

/// One step of a kernel trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// Execute a compute block on the functional units.
    Compute(InstrBlock),
    /// Load `len` bytes from `addr` (blocks the PE until data arrives).
    Load {
        /// Byte address in the accelerator's data space.
        addr: u64,
        /// Access size in bytes.
        len: u32,
    },
    /// Store `len` bytes to `addr`.
    Store {
        /// Byte address in the accelerator's data space.
        addr: u64,
        /// Access size in bytes.
        len: u32,
    },
}

impl util::json::ToJson for TraceOp {
    fn to_json(&self) -> util::json::Json {
        use util::json::Json;
        let span = |addr: u64, len: u32| {
            Json::Obj(vec![
                ("addr".to_string(), addr.to_json()),
                ("len".to_string(), len.to_json()),
            ])
        };
        match *self {
            TraceOp::Compute(b) => Json::Obj(vec![("Compute".to_string(), b.to_json())]),
            TraceOp::Load { addr, len } => Json::Obj(vec![("Load".to_string(), span(addr, len))]),
            TraceOp::Store { addr, len } => Json::Obj(vec![("Store".to_string(), span(addr, len))]),
        }
    }
}

impl util::json::FromJson for TraceOp {
    fn from_json(v: &util::json::Json) -> Result<Self, util::json::JsonError> {
        use util::json::{field, Json, JsonError};
        let pairs = match v {
            Json::Obj(pairs) if pairs.len() == 1 => pairs,
            _ => return Err(JsonError::new("expected single-key TraceOp object")),
        };
        let (tag, body) = &pairs[0];
        match tag.as_str() {
            "Compute" => Ok(TraceOp::Compute(InstrBlock::from_json(body)?)),
            "Load" => Ok(TraceOp::Load {
                addr: field(body, "addr")?,
                len: field(body, "len")?,
            }),
            "Store" => Ok(TraceOp::Store {
                addr: field(body, "addr")?,
                len: field(body, "len")?,
            }),
            other => Err(JsonError::new(format!("unknown TraceOp variant {other:?}"))),
        }
    }
}

// --- packed encoding -------------------------------------------------
//
// Each op starts with a tag byte:
//   0 — Compute: four varints (m, l, s, d)
//   1 — Load, same length as the previous memory op: one zigzag varint
//       (address delta)
//   2 — Load, new length: zigzag varint delta + varint length
//   3 / 4 — Store, same two layouts
// Encoder and decoder carry the same (last_addr, last_len) prediction
// state, so the stream is self-contained from the front.

const TAG_COMPUTE: u8 = 0;
const TAG_LOAD: u8 = 1;
const TAG_LOAD_LEN: u8 = 2;
const TAG_STORE: u8 = 3;
const TAG_STORE_LEN: u8 = 4;

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn get_varint(bytes: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let b = bytes[*pos];
        *pos += 1;
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A per-PE instruction/memory trace (packed storage; see module docs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// The packed op stream.
    bytes: Vec<u8>,
    /// Ops encoded in `bytes` (excluding `tail`).
    encoded: usize,
    /// Trailing compute block kept unencoded so [`Trace::compute`] can
    /// merge adjacent blocks before they are frozen into the stream.
    tail: Option<InstrBlock>,
    /// Encoder prediction state: previous memory address.
    last_addr: u64,
    /// Encoder prediction state: previous access length.
    last_len: u32,
}

// Serialized as `{ "ops": [...] }` — the exact layout the old
// `Vec<TraceOp>` representation had, so trace JSON is unchanged.
impl util::json::ToJson for Trace {
    fn to_json(&self) -> util::json::Json {
        use util::json::Json;
        Json::Obj(vec![(
            "ops".to_string(),
            Json::Arr(self.iter().map(|op| op.to_json()).collect()),
        )])
    }
}

impl util::json::FromJson for Trace {
    fn from_json(v: &util::json::Json) -> Result<Self, util::json::JsonError> {
        let ops: Vec<TraceOp> = util::json::field(v, "ops")?;
        Ok(ops.into_iter().collect())
    }
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decodes the operations in order, front to back. Decoding is
    /// allocation-free — the iterator walks the packed stream.
    pub fn iter(&self) -> TraceIter<'_> {
        TraceIter {
            bytes: &self.bytes,
            pos: 0,
            remaining: self.encoded,
            tail: self.tail,
            last_addr: 0,
            last_len: 0,
        }
    }

    /// Content fingerprint of the op stream (64-bit FNV-1a over the
    /// packed encoding plus the open tail block).
    ///
    /// The packed encoding is a pure function of the op sequence, so two
    /// traces fingerprint equal iff they decode to the same ops (modulo
    /// a 2^-64 collision). Used as a content-addressed cache key for
    /// derived artifacts such as `MemSchedule`.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = util::fingerprint::Fnv64::new();
        // FNV-1a over 64-bit lanes: fingerprinting runs per schedule
        // lookup, and a byte-at-a-time walk of a multi-megabyte stream
        // was measurable in sweep profiles. A trailing partial lane is
        // zero-padded; the exact byte length is mixed in below, so
        // padded and genuine zero bytes cannot alias.
        let mut chunks = self.bytes.chunks_exact(8);
        for c in &mut chunks {
            fp.mix_u64(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut last = [0u8; 8];
            last[..rest.len()].copy_from_slice(rest);
            fp.mix_u64(u64::from_le_bytes(last));
        }
        fp.mix_u64(self.bytes.len() as u64);
        fp.mix_u64(self.encoded as u64);
        fp.mix_u64(self.tail.is_some() as u64);
        if let Some(t) = &self.tail {
            for v in [t.m, t.l, t.s, t.d] {
                fp.mix_u64(v);
            }
        }
        fp.value()
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.encoded + usize::from(self.tail.is_some())
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Packed size in bytes (diagnostics; an unpacked `Vec<TraceOp>`
    /// would be `24 * len`).
    pub fn packed_bytes(&self) -> usize {
        self.bytes.len()
    }

    fn flush_tail(&mut self) {
        if let Some(b) = self.tail.take() {
            self.bytes.push(TAG_COMPUTE);
            put_varint(&mut self.bytes, b.m);
            put_varint(&mut self.bytes, b.l);
            put_varint(&mut self.bytes, b.s);
            put_varint(&mut self.bytes, b.d);
            self.encoded += 1;
        }
    }

    fn push_mem(&mut self, store: bool, addr: u64, len: u32) {
        self.flush_tail();
        let delta = zigzag(addr.wrapping_sub(self.last_addr) as i64);
        if len == self.last_len {
            self.bytes.push(if store { TAG_STORE } else { TAG_LOAD });
            put_varint(&mut self.bytes, delta);
        } else {
            self.bytes
                .push(if store { TAG_STORE_LEN } else { TAG_LOAD_LEN });
            put_varint(&mut self.bytes, delta);
            put_varint(&mut self.bytes, u64::from(len));
            self.last_len = len;
        }
        self.last_addr = addr;
        self.encoded += 1;
    }

    /// Appends a compute block, merging into a preceding compute op so
    /// traces stay compact.
    pub fn compute(&mut self, block: InstrBlock) {
        if block.total() == 0 {
            return;
        }
        match self.tail.as_mut() {
            Some(last) => last.merge(block),
            None => self.tail = Some(block),
        }
    }

    /// Appends a load.
    pub fn load(&mut self, addr: u64, len: u32) {
        assert!(len > 0, "zero-length load");
        self.push_mem(false, addr, len);
    }

    /// Appends a store.
    pub fn store(&mut self, addr: u64, len: u32) {
        assert!(len > 0, "zero-length store");
        self.push_mem(true, addr, len);
    }

    /// Total instructions (compute + one per memory op).
    pub fn instructions(&self) -> u64 {
        self.iter()
            .map(|op| match op {
                TraceOp::Compute(b) => b.total(),
                _ => 1,
            })
            .sum()
    }

    /// `(loads, stores, bytes_loaded, bytes_stored)`.
    pub fn memory_profile(&self) -> (u64, u64, u64, u64) {
        let mut p = (0, 0, 0, 0);
        for op in self.iter() {
            match op {
                TraceOp::Load { len, .. } => {
                    p.0 += 1;
                    p.2 += len as u64;
                }
                TraceOp::Store { len, .. } => {
                    p.1 += 1;
                    p.3 += len as u64;
                }
                TraceOp::Compute(_) => {}
            }
        }
        p
    }

    /// The trace with DSP intrinsics *removed*: §VI's ported Polybench
    /// embeds multi-way multiply/add and 16-bit integer intrinsics that
    /// "merge multiple multiply and accumulation operations into one";
    /// the scalarized variant issues those operations individually (the
    /// un-optimized port), roughly tripling `.M`-class issue pressure.
    /// Used by the intrinsics ablation bench.
    pub fn scalarized(&self) -> Trace {
        self.iter()
            .map(|op| match op {
                TraceOp::Compute(b) => TraceOp::Compute(InstrBlock {
                    m: b.m * 3,
                    l: b.l,
                    s: b.s + b.m, // extra move/accumulate glue
                    d: b.d,
                }),
                other => other,
            })
            .collect()
    }

    /// The distinct store target addresses, word-aligned — exactly what
    /// the server announces to the PRAM controller for selective erasing.
    pub fn store_targets(&self, word_bytes: u64) -> Vec<u64> {
        let mut set = std::collections::BTreeSet::new();
        for op in self.iter() {
            if let TraceOp::Store { addr, len } = op {
                let first = addr / word_bytes;
                let last = (addr + len as u64 - 1) / word_bytes;
                for w in first..=last {
                    set.insert(w * word_bytes);
                }
            }
        }
        set.into_iter().collect()
    }
}

/// Decoding iterator over a packed [`Trace`].
#[derive(Debug, Clone)]
pub struct TraceIter<'t> {
    bytes: &'t [u8],
    pos: usize,
    remaining: usize,
    tail: Option<InstrBlock>,
    last_addr: u64,
    last_len: u32,
}

impl Iterator for TraceIter<'_> {
    type Item = TraceOp;

    fn next(&mut self) -> Option<TraceOp> {
        if self.remaining == 0 {
            return self.tail.take().map(TraceOp::Compute);
        }
        self.remaining -= 1;
        let tag = self.bytes[self.pos];
        self.pos += 1;
        if tag == TAG_COMPUTE {
            let m = get_varint(self.bytes, &mut self.pos);
            let l = get_varint(self.bytes, &mut self.pos);
            let s = get_varint(self.bytes, &mut self.pos);
            let d = get_varint(self.bytes, &mut self.pos);
            return Some(TraceOp::Compute(InstrBlock { m, l, s, d }));
        }
        let delta = unzigzag(get_varint(self.bytes, &mut self.pos));
        let addr = self.last_addr.wrapping_add(delta as u64);
        self.last_addr = addr;
        if tag == TAG_LOAD_LEN || tag == TAG_STORE_LEN {
            self.last_len = get_varint(self.bytes, &mut self.pos) as u32;
        }
        let len = self.last_len;
        Some(match tag {
            TAG_LOAD | TAG_LOAD_LEN => TraceOp::Load { addr, len },
            TAG_STORE | TAG_STORE_LEN => TraceOp::Store { addr, len },
            other => unreachable!("corrupt trace stream: tag {other}"),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining + usize::from(self.tail.is_some());
        (n, Some(n))
    }
}

impl ExactSizeIterator for TraceIter<'_> {}

impl<'t> IntoIterator for &'t Trace {
    type Item = TraceOp;
    type IntoIter = TraceIter<'t>;

    fn into_iter(self) -> TraceIter<'t> {
        self.iter()
    }
}

impl FromIterator<TraceOp> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceOp>>(iter: I) -> Self {
        let mut t = Trace::new();
        for op in iter {
            match op {
                TraceOp::Compute(b) => t.compute(b),
                TraceOp::Load { addr, len } => t.load(addr, len),
                TraceOp::Store { addr, len } => t.store(addr, len),
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use util::json::{FromJson, ToJson};

    #[test]
    fn instr_block_cycles_parallel_issue() {
        // 8 instructions spread over all classes issue in one cycle.
        let b = InstrBlock {
            m: 2,
            l: 2,
            s: 2,
            d: 2,
        };
        assert_eq!(b.cycles(), 1);
        // 8 multiplies alone need 4 cycles (two .M units).
        let b = InstrBlock {
            m: 8,
            ..Default::default()
        };
        assert_eq!(b.cycles(), 4);
        // Empty block: zero cycles.
        assert_eq!(InstrBlock::default().cycles(), 0);
        // One instruction: one cycle.
        assert_eq!(
            InstrBlock {
                l: 1,
                ..Default::default()
            }
            .cycles(),
            1
        );
    }

    #[test]
    fn compute_blocks_coalesce() {
        let mut t = Trace::new();
        t.compute(InstrBlock::alu(4));
        t.compute(InstrBlock::alu(4));
        assert_eq!(t.len(), 1);
        t.load(0, 8);
        t.compute(InstrBlock::alu(2));
        assert_eq!(t.len(), 3);
        assert_eq!(t.instructions(), 11);
    }

    #[test]
    fn memory_profile_counts() {
        let mut t = Trace::new();
        t.load(0, 8);
        t.load(64, 8);
        t.store(128, 4);
        let (l, s, bl, bs) = t.memory_profile();
        assert_eq!((l, s, bl, bs), (2, 1, 16, 4));
    }

    #[test]
    fn packed_stream_round_trips_every_op_shape() {
        // Backward deltas, repeated lengths, length changes, interleaved
        // compute blocks — decode must reproduce the exact sequence.
        let mut t = Trace::new();
        t.compute(InstrBlock::mac(7, 3));
        t.load(1 << 40, 8);
        t.load(64, 8); // huge backward delta, same len
        t.store(65, 4); // +1 delta, new len
        t.store(65, 4); // zero delta, same len
        t.compute(InstrBlock::alu(5));
        t.load(0, 1);
        t.compute(InstrBlock::alu(1)); // trailing unencoded block
        let ops: Vec<TraceOp> = t.iter().collect();
        assert_eq!(
            ops,
            vec![
                TraceOp::Compute(InstrBlock::mac(7, 3)),
                TraceOp::Load {
                    addr: 1 << 40,
                    len: 8
                },
                TraceOp::Load { addr: 64, len: 8 },
                TraceOp::Store { addr: 65, len: 4 },
                TraceOp::Store { addr: 65, len: 4 },
                TraceOp::Compute(InstrBlock::alu(5)),
                TraceOp::Load { addr: 0, len: 1 },
                TraceOp::Compute(InstrBlock::alu(1)),
            ]
        );
        assert_eq!(t.len(), ops.len());
        assert_eq!(t.iter().len(), ops.len());
        // Rebuilding from the decoded ops is representation-identical.
        let rebuilt: Trace = ops.into_iter().collect();
        assert_eq!(rebuilt, t);
    }

    #[test]
    fn packed_storage_is_compact() {
        // A realistic stride-8 stream must pack far below 24 B/op.
        let mut t = Trace::new();
        for i in 0..10_000u64 {
            t.load(i * 8, 8);
            t.compute(InstrBlock::alu(4));
        }
        assert!(
            t.packed_bytes() < t.len() * 8,
            "{} bytes for {} ops",
            t.packed_bytes(),
            t.len()
        );
    }

    #[test]
    fn trace_json_layout_is_the_ops_array() {
        let mut t = Trace::new();
        t.compute(InstrBlock::alu(2));
        t.load(8, 8);
        let text = t.to_json_pretty();
        assert!(text.contains("\"ops\""));
        assert!(text.contains("\"Compute\""));
        assert!(text.contains("\"Load\""));
        let back = Trace::from_json_str(&text).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn store_targets_are_word_aligned_and_deduped() {
        let mut t = Trace::new();
        t.store(100, 8); // word 3 (96..128)
        t.store(104, 8); // word 3 again
        t.store(30, 8); // words 0 and 1
        let targets = t.store_targets(32);
        assert_eq!(targets, vec![0, 32, 96]);
    }

    #[test]
    fn scalarized_traces_need_more_cycles() {
        let mut t = Trace::new();
        t.compute(InstrBlock {
            m: 8,
            l: 2,
            s: 2,
            d: 2,
        });
        t.load(0, 8);
        let s = t.scalarized();
        let cycles = |tr: &Trace| -> u64 {
            tr.iter()
                .map(|op| match op {
                    TraceOp::Compute(b) => b.cycles(),
                    _ => 0,
                })
                .sum()
        };
        assert!(cycles(&s) > cycles(&t));
        // Memory behaviour is untouched.
        assert_eq!(s.memory_profile(), t.memory_profile());
    }

    #[test]
    fn zero_compute_blocks_dropped() {
        let mut t = Trace::new();
        t.compute(InstrBlock::default());
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic(expected = "zero-length load")]
    fn zero_load_rejected() {
        Trace::new().load(0, 0);
    }
}
