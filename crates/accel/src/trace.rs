//! Kernel execution traces.
//!
//! A [`Trace`] is what a compiled kernel looks like to the performance
//! model: alternating compute blocks (instruction counts per functional
//! unit class) and explicit memory operations with addresses. The
//! [`workloads`] crate produces traces by *actually running* each
//! Polybench kernel with instrumented array accesses, so the address
//! streams and read/write mixes are the real ones.
//!
//! [`workloads`]: https://docs.rs/workloads

/// Instruction counts of one compute block, by functional-unit class
/// (Figure 6b: a PE has two of each).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstrBlock {
    /// `.M` (multiply / DSP-intrinsic MAC) instructions.
    pub m: u64,
    /// `.L` (logical / compare) instructions.
    pub l: u64,
    /// `.S` (general arithmetic / branch) instructions.
    pub s: u64,
    /// `.D` (address generation / load-store assist) instructions.
    pub d: u64,
}

util::json_struct!(InstrBlock { m, l, s, d });

impl InstrBlock {
    /// A block of `n` balanced ALU instructions.
    pub fn alu(n: u64) -> Self {
        InstrBlock {
            m: 0,
            l: n / 2,
            s: n - n / 2,
            d: 0,
        }
    }

    /// A block of multiply-accumulate work with its address math.
    pub fn mac(muls: u64, addr_ops: u64) -> Self {
        InstrBlock {
            m: muls,
            l: 0,
            s: addr_ops / 2,
            d: addr_ops - addr_ops / 2,
        }
    }

    /// Total instructions in the block.
    pub fn total(&self) -> u64 {
        self.m + self.l + self.s + self.d
    }

    /// Issue cycles on a PE with two units per class (VLIW: all four
    /// classes issue in parallel, two instructions per class per cycle).
    pub fn cycles(&self) -> u64 {
        let per = |n: u64| n.div_ceil(2);
        per(self.m)
            .max(per(self.l))
            .max(per(self.s))
            .max(per(self.d))
            .max(
                // A non-empty block takes at least a cycle.
                u64::from(self.total() > 0),
            )
    }

    /// Merges another block into this one.
    pub fn merge(&mut self, other: InstrBlock) {
        self.m += other.m;
        self.l += other.l;
        self.s += other.s;
        self.d += other.d;
    }
}

/// One step of a kernel trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// Execute a compute block on the functional units.
    Compute(InstrBlock),
    /// Load `len` bytes from `addr` (blocks the PE until data arrives).
    Load {
        /// Byte address in the accelerator's data space.
        addr: u64,
        /// Access size in bytes.
        len: u32,
    },
    /// Store `len` bytes to `addr`.
    Store {
        /// Byte address in the accelerator's data space.
        addr: u64,
        /// Access size in bytes.
        len: u32,
    },
}

impl util::json::ToJson for TraceOp {
    fn to_json(&self) -> util::json::Json {
        use util::json::Json;
        let span = |addr: u64, len: u32| {
            Json::Obj(vec![
                ("addr".to_string(), addr.to_json()),
                ("len".to_string(), len.to_json()),
            ])
        };
        match *self {
            TraceOp::Compute(b) => Json::Obj(vec![("Compute".to_string(), b.to_json())]),
            TraceOp::Load { addr, len } => Json::Obj(vec![("Load".to_string(), span(addr, len))]),
            TraceOp::Store { addr, len } => Json::Obj(vec![("Store".to_string(), span(addr, len))]),
        }
    }
}

impl util::json::FromJson for TraceOp {
    fn from_json(v: &util::json::Json) -> Result<Self, util::json::JsonError> {
        use util::json::{field, Json, JsonError};
        let pairs = match v {
            Json::Obj(pairs) if pairs.len() == 1 => pairs,
            _ => return Err(JsonError::new("expected single-key TraceOp object")),
        };
        let (tag, body) = &pairs[0];
        match tag.as_str() {
            "Compute" => Ok(TraceOp::Compute(InstrBlock::from_json(body)?)),
            "Load" => Ok(TraceOp::Load {
                addr: field(body, "addr")?,
                len: field(body, "len")?,
            }),
            "Store" => Ok(TraceOp::Store {
                addr: field(body, "addr")?,
                len: field(body, "len")?,
            }),
            other => Err(JsonError::new(format!("unknown TraceOp variant {other:?}"))),
        }
    }
}

/// A per-PE instruction/memory trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    ops: Vec<TraceOp>,
}

util::json_struct!(Trace { ops });

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// The operations in order.
    pub fn ops(&self) -> &[TraceOp] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Appends a compute block, merging into a preceding compute op so
    /// traces stay compact.
    pub fn compute(&mut self, block: InstrBlock) {
        if block.total() == 0 {
            return;
        }
        if let Some(TraceOp::Compute(last)) = self.ops.last_mut() {
            last.merge(block);
        } else {
            self.ops.push(TraceOp::Compute(block));
        }
    }

    /// Appends a load.
    pub fn load(&mut self, addr: u64, len: u32) {
        assert!(len > 0, "zero-length load");
        self.ops.push(TraceOp::Load { addr, len });
    }

    /// Appends a store.
    pub fn store(&mut self, addr: u64, len: u32) {
        assert!(len > 0, "zero-length store");
        self.ops.push(TraceOp::Store { addr, len });
    }

    /// Total instructions (compute + one per memory op).
    pub fn instructions(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                TraceOp::Compute(b) => b.total(),
                _ => 1,
            })
            .sum()
    }

    /// `(loads, stores, bytes_loaded, bytes_stored)`.
    pub fn memory_profile(&self) -> (u64, u64, u64, u64) {
        let mut p = (0, 0, 0, 0);
        for op in &self.ops {
            match *op {
                TraceOp::Load { len, .. } => {
                    p.0 += 1;
                    p.2 += len as u64;
                }
                TraceOp::Store { len, .. } => {
                    p.1 += 1;
                    p.3 += len as u64;
                }
                TraceOp::Compute(_) => {}
            }
        }
        p
    }

    /// The trace with DSP intrinsics *removed*: §VI's ported Polybench
    /// embeds multi-way multiply/add and 16-bit integer intrinsics that
    /// "merge multiple multiply and accumulation operations into one";
    /// the scalarized variant issues those operations individually (the
    /// un-optimized port), roughly tripling `.M`-class issue pressure.
    /// Used by the intrinsics ablation bench.
    pub fn scalarized(&self) -> Trace {
        let ops = self.ops.iter().map(|op| match *op {
            TraceOp::Compute(b) => TraceOp::Compute(InstrBlock {
                m: b.m * 3,
                l: b.l,
                s: b.s + b.m, // extra move/accumulate glue
                d: b.d,
            }),
            other => other,
        });
        let mut t = Trace::new();
        for op in ops {
            match op {
                TraceOp::Compute(b) => t.compute(b),
                TraceOp::Load { addr, len } => t.load(addr, len),
                TraceOp::Store { addr, len } => t.store(addr, len),
            }
        }
        t
    }

    /// The distinct store target addresses, word-aligned — exactly what
    /// the server announces to the PRAM controller for selective erasing.
    pub fn store_targets(&self, word_bytes: u64) -> Vec<u64> {
        let mut set = std::collections::BTreeSet::new();
        for op in &self.ops {
            if let TraceOp::Store { addr, len } = *op {
                let first = addr / word_bytes;
                let last = (addr + len as u64 - 1) / word_bytes;
                for w in first..=last {
                    set.insert(w * word_bytes);
                }
            }
        }
        set.into_iter().collect()
    }
}

impl FromIterator<TraceOp> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceOp>>(iter: I) -> Self {
        let mut t = Trace::new();
        for op in iter {
            match op {
                TraceOp::Compute(b) => t.compute(b),
                TraceOp::Load { addr, len } => t.load(addr, len),
                TraceOp::Store { addr, len } => t.store(addr, len),
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instr_block_cycles_parallel_issue() {
        // 8 instructions spread over all classes issue in one cycle.
        let b = InstrBlock {
            m: 2,
            l: 2,
            s: 2,
            d: 2,
        };
        assert_eq!(b.cycles(), 1);
        // 8 multiplies alone need 4 cycles (two .M units).
        let b = InstrBlock {
            m: 8,
            ..Default::default()
        };
        assert_eq!(b.cycles(), 4);
        // Empty block: zero cycles.
        assert_eq!(InstrBlock::default().cycles(), 0);
        // One instruction: one cycle.
        assert_eq!(
            InstrBlock {
                l: 1,
                ..Default::default()
            }
            .cycles(),
            1
        );
    }

    #[test]
    fn compute_blocks_coalesce() {
        let mut t = Trace::new();
        t.compute(InstrBlock::alu(4));
        t.compute(InstrBlock::alu(4));
        assert_eq!(t.len(), 1);
        t.load(0, 8);
        t.compute(InstrBlock::alu(2));
        assert_eq!(t.len(), 3);
        assert_eq!(t.instructions(), 11);
    }

    #[test]
    fn memory_profile_counts() {
        let mut t = Trace::new();
        t.load(0, 8);
        t.load(64, 8);
        t.store(128, 4);
        let (l, s, bl, bs) = t.memory_profile();
        assert_eq!((l, s, bl, bs), (2, 1, 16, 4));
    }

    #[test]
    fn store_targets_are_word_aligned_and_deduped() {
        let mut t = Trace::new();
        t.store(100, 8); // word 3 (96..128)
        t.store(104, 8); // word 3 again
        t.store(30, 8); // words 0 and 1
        let targets = t.store_targets(32);
        assert_eq!(targets, vec![0, 32, 96]);
    }

    #[test]
    fn scalarized_traces_need_more_cycles() {
        let mut t = Trace::new();
        t.compute(InstrBlock {
            m: 8,
            l: 2,
            s: 2,
            d: 2,
        });
        t.load(0, 8);
        let s = t.scalarized();
        let cycles = |tr: &Trace| -> u64 {
            tr.ops()
                .iter()
                .map(|op| match op {
                    TraceOp::Compute(b) => b.cycles(),
                    _ => 0,
                })
                .sum()
        };
        assert!(cycles(&s) > cycles(&t));
        // Memory behaviour is untouched.
        assert_eq!(s.memory_profile(), t.memory_profile());
    }

    #[test]
    fn zero_compute_blocks_dropped() {
        let mut t = Trace::new();
        t.compute(InstrBlock::default());
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic(expected = "zero-length load")]
    fn zero_load_rejected() {
        Trace::new().load(0, 0);
    }
}
