//! The crossbar network connecting PEs to the server's MCU (Figure 6a).
//!
//! Each PE owns a master and a slave port on the crossbar; traffic to the
//! memory subsystem funnels into the MCU's ports. By default the
//! execution engine charges a fixed traversal latency
//! ([`crate::pe::PeConfig::xbar_latency`]) — the crossbar is generously
//! provisioned on the real platform. This module supplies the optional
//! *contended* model for ablations: a fixed number of MCU-facing ports,
//! each carrying one outstanding transfer at a time at a finite port
//! bandwidth, so heavy miss traffic from many agents queues.

use sim_core::time::Picos;
use sim_core::timeline::TimelineBank;

/// Contended-crossbar parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XbarConfig {
    /// MCU-facing ports (concurrent in-flight transfers).
    pub ports: usize,
    /// Per-hop traversal latency.
    pub hop_latency: Picos,
    /// Port bandwidth in bytes/second (the 256-bit bus of Fig. 6b at the
    /// core clock).
    pub bytes_per_sec: u64,
}

util::json_struct!(XbarConfig {
    ports,
    hop_latency,
    bytes_per_sec
});

impl Default for XbarConfig {
    fn default() -> Self {
        XbarConfig {
            ports: 2, // MC1 + MC2 of Figure 6b
            hop_latency: Picos::from_ns(10),
            bytes_per_sec: 32_000_000_000, // 256-bit @ 1 GHz
        }
    }
}

/// The contended crossbar.
#[derive(Debug, Clone)]
pub struct Crossbar {
    config: XbarConfig,
    ports: TimelineBank,
    transfers: u64,
}

impl Crossbar {
    /// Builds the crossbar.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero.
    pub fn new(config: XbarConfig) -> Self {
        Crossbar {
            ports: TimelineBank::new(config.ports),
            config,
            transfers: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &XbarConfig {
        &self.config
    }

    /// Transfers completed.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Carries `bytes` across the crossbar starting no earlier than `at`;
    /// returns when the payload has fully traversed.
    pub fn transfer(&mut self, at: Picos, bytes: u32) -> Picos {
        let dur = self.config.hop_latency
            + Picos::from_ps(bytes as u64 * 1_000_000_000_000 / self.config.bytes_per_sec);
        let port = self.ports.first_free(at);
        let start = self.ports.get_mut(port).reserve(at, dur);
        self.transfers += 1;
        start + dur
    }

    /// Aggregate busy time across ports (utilization accounting).
    pub fn busy_total(&self) -> Picos {
        self.ports.busy_total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_hop_plus_bandwidth() {
        let mut x = Crossbar::new(XbarConfig::default());
        let done = x.transfer(Picos::ZERO, 256);
        // 10 ns hop + 256 B / 32 GB/s = 8 ns.
        assert_eq!(done, Picos::from_ns(18));
    }

    #[test]
    fn two_ports_carry_two_transfers_in_parallel() {
        let mut x = Crossbar::new(XbarConfig::default());
        let a = x.transfer(Picos::ZERO, 256);
        let b = x.transfer(Picos::ZERO, 256);
        assert_eq!(a, b, "both ports free: no queueing");
        let c = x.transfer(Picos::ZERO, 256);
        assert!(c > a, "third transfer queues behind a port");
        assert_eq!(x.transfers(), 3);
    }

    #[test]
    fn queueing_respects_earliest_free_port() {
        let mut x = Crossbar::new(
            Crossbar::new(XbarConfig {
                ports: 1,
                ..Default::default()
            })
            .config,
        );
        let a = x.transfer(Picos::ZERO, 2560);
        let b = x.transfer(Picos::from_ns(5), 256);
        assert!(b > a);
        assert!(x.busy_total() > Picos::from_ns(100));
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_ports_rejected() {
        Crossbar::new(XbarConfig {
            ports: 0,
            ..Default::default()
        });
    }
}
