//! PRAM timing parameters (Table II of the paper).
//!
//! | Parameter | Value | Parameter | Value |
//! |---|---|---|---|
//! | RL | 6 cycles | tRP | 3 cycles |
//! | WL | 3 cycles | tRCD | 80 ns |
//! | tCK | 2.5 ns | tDQSCK | 2.5–5.5 ns |
//! | tDQSS | 0.75–1.25 ns | tWRA | 15 ns |
//! | tBURST | 4/8/16 cycles (BL4/8/16) | PRAM write | 10 (+8 overwrite) µs |
//! | RAB | 4 | RDB | 4 × 32 B |
//! | Channels | 2 | Packages | 16 | Partitions | 16 |
//!
//! The paper additionally characterizes the erase latency at ~60 ms
//! (§V-A) and notes that a complete three-phase read lands around 100 ns.

use sim_core::time::{Freq, Picos};
use sim_core::SimRng;

/// LPDDR2-NVM burst length selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BurstLen {
    /// 4-beat burst (8 bytes on the 16-bit dq bus).
    Bl4,
    /// 8-beat burst (16 bytes).
    Bl8,
    /// 16-beat burst (32 bytes — one full row word).
    #[default]
    Bl16,
}

util::json_unit_enum!(BurstLen { Bl4, Bl8, Bl16 });

impl BurstLen {
    /// Burst duration in interface cycles (Table II maps BLn to n cycles).
    pub fn cycles(self) -> u64 {
        match self {
            BurstLen::Bl4 => 4,
            BurstLen::Bl8 => 8,
            BurstLen::Bl16 => 16,
        }
    }

    /// Bytes transferred by one burst over the 16-bit dq bus.
    pub fn bytes(self) -> u32 {
        match self {
            BurstLen::Bl4 => 8,
            BurstLen::Bl8 => 16,
            BurstLen::Bl16 => 32,
        }
    }

    /// Smallest burst covering `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds 32 bytes (one row word).
    pub fn covering(n: u32) -> Self {
        assert!(n > 0 && n <= 32, "burst must cover 1..=32 bytes, got {n}");
        if n <= 8 {
            BurstLen::Bl4
        } else if n <= 16 {
            BurstLen::Bl8
        } else {
            BurstLen::Bl16
        }
    }
}

/// The complete timing parameter set of one PRAM module.
///
/// Constructed via [`PramTiming::table2`] for the paper's characterized
/// device; all fields are public so ablation benches can sweep them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PramTiming {
    /// Interface clock (400 MHz → tCK = 2.5 ns).
    pub clock: Freq,
    /// Read latency in interface cycles.
    pub rl_cycles: u64,
    /// Write latency in interface cycles.
    pub wl_cycles: u64,
    /// Row precharge (pre-active phase) in interface cycles.
    pub trp_cycles: u64,
    /// Row-to-column delay (activate phase: address composition + array
    /// sensing into the RDB).
    pub trcd: Picos,
    /// Read strobe output access window, sampled uniformly per access.
    pub tdqsck_min: Picos,
    /// Upper bound of the tDQSCK window.
    pub tdqsck_max: Picos,
    /// Write strobe latching window, sampled uniformly per access.
    pub tdqss_min: Picos,
    /// Upper bound of the tDQSS window.
    pub tdqss_max: Picos,
    /// Write recovery after a program-buffer flush.
    pub twra: Picos,
    /// SET-only cell program time (write to pristine cells).
    pub t_program_set: Picos,
    /// Extra RESET time incurred when overwriting programmed cells
    /// (overwrite = RESET + SET = `t_program_set + t_reset_extra`).
    pub t_reset_extra: Picos,
    /// Partition erase latency (~3000× an overwrite; §V-A measures 60 ms).
    pub t_erase: Picos,
    /// Pause/resume overhead for write pausing (the §VII extension after
    /// Qureshi et al. \[66\]): suspending an in-flight program so a read
    /// can slip in, then re-ramping the write drivers.
    pub t_pause_resume: Picos,
    /// Number of row address buffers.
    pub rab_count: usize,
    /// Number of row data buffers (each `word_bytes` wide).
    pub rdb_count: usize,
}

util::json_struct!(PramTiming {
    clock,
    rl_cycles,
    wl_cycles,
    trp_cycles,
    trcd,
    tdqsck_min,
    tdqsck_max,
    tdqss_min,
    tdqss_max,
    twra,
    t_program_set,
    t_reset_extra,
    t_erase,
    t_pause_resume,
    rab_count,
    rdb_count,
});

impl Default for PramTiming {
    fn default() -> Self {
        Self::table2()
    }
}

impl PramTiming {
    /// The characterized parameters of Table II.
    pub fn table2() -> Self {
        PramTiming {
            clock: Freq::from_mhz(400),
            rl_cycles: 6,
            wl_cycles: 3,
            trp_cycles: 3,
            trcd: Picos::from_ns(80),
            tdqsck_min: Picos::from_ns_f64(2.5),
            tdqsck_max: Picos::from_ns_f64(5.5),
            tdqss_min: Picos::from_ns_f64(0.75),
            tdqss_max: Picos::from_ns_f64(1.25),
            twra: Picos::from_ns(15),
            t_program_set: Picos::from_us(10),
            t_reset_extra: Picos::from_us(8),
            t_erase: Picos::from_ms(60),
            t_pause_resume: Picos::from_ns(500),
            rab_count: 4,
            rdb_count: 4,
        }
    }

    /// The 9x-nm parallel PRAM with a NOR-flash interface ("NOR-intf" in
    /// Table I): byte-addressable but with 290 µs reads, 120 µs writes and
    /// 16-bit serialized low-level operations.
    pub fn nor_interface() -> Self {
        PramTiming {
            clock: Freq::from_mhz(66),
            rl_cycles: 6,
            wl_cycles: 3,
            trp_cycles: 3,
            trcd: Picos::from_us(290), // array sensing dominates
            tdqsck_min: Picos::from_ns_f64(2.5),
            tdqsck_max: Picos::from_ns_f64(5.5),
            tdqss_min: Picos::from_ns_f64(0.75),
            tdqss_max: Picos::from_ns_f64(1.25),
            twra: Picos::from_ns(15),
            t_program_set: Picos::from_us(120),
            t_reset_extra: Picos::ZERO, // already included in the 120 µs
            t_erase: Picos::from_ms(60),
            t_pause_resume: Picos::from_us(2),
            rab_count: 1,
            rdb_count: 1,
        }
    }

    /// One interface cycle.
    pub fn tck(&self) -> Picos {
        self.clock.cycle()
    }

    /// Pre-active phase duration (tRP).
    pub fn trp(&self) -> Picos {
        self.clock.cycles_to_time(self.trp_cycles)
    }

    /// Read latency (RL) as time.
    pub fn rl(&self) -> Picos {
        self.clock.cycles_to_time(self.rl_cycles)
    }

    /// Write latency (WL) as time.
    pub fn wl(&self) -> Picos {
        self.clock.cycles_to_time(self.wl_cycles)
    }

    /// Burst duration for a burst length.
    pub fn tburst(&self, bl: BurstLen) -> Picos {
        self.clock.cycles_to_time(bl.cycles())
    }

    /// Samples the read strobe window (tDQSCK) uniformly.
    pub fn sample_tdqsck(&self, rng: &mut SimRng) -> Picos {
        Picos::from_ps(rng.range_u64(self.tdqsck_min.as_ps(), self.tdqsck_max.as_ps()))
    }

    /// Samples the write strobe window (tDQSS) uniformly.
    pub fn sample_tdqss(&self, rng: &mut SimRng) -> Picos {
        Picos::from_ps(rng.range_u64(self.tdqss_min.as_ps(), self.tdqss_max.as_ps()))
    }

    /// Cell program time for an overwrite (RESET + SET).
    pub fn t_program_overwrite(&self) -> Picos {
        self.t_program_set + self.t_reset_extra
    }

    /// The nominal latency of a complete three-phase read with no buffer
    /// hits: `tRP + tRCD + RL + mean tDQSCK + tBURST(BL16)`.
    ///
    /// For Table II this is ≈ 146.5 ns — the paper rounds it to "around
    /// 100 ns".
    pub fn nominal_read(&self) -> Picos {
        let dqsck = (self.tdqsck_min + self.tdqsck_max) / 2;
        self.trp() + self.trcd + self.rl() + dqsck + self.tburst(BurstLen::Bl16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values_are_exact() {
        let t = PramTiming::table2();
        assert_eq!(t.tck(), Picos::from_ns_f64(2.5));
        assert_eq!(t.rl(), Picos::from_ns(15)); // 6 cycles
        assert_eq!(t.wl(), Picos::from_ns_f64(7.5)); // 3 cycles
        assert_eq!(t.trp(), Picos::from_ns_f64(7.5)); // 3 cycles
        assert_eq!(t.trcd, Picos::from_ns(80));
        assert_eq!(t.twra, Picos::from_ns(15));
        assert_eq!(t.tburst(BurstLen::Bl4), Picos::from_ns(10));
        assert_eq!(t.tburst(BurstLen::Bl8), Picos::from_ns(20));
        assert_eq!(t.tburst(BurstLen::Bl16), Picos::from_ns(40));
        assert_eq!(t.t_program_set, Picos::from_us(10));
        assert_eq!(t.t_program_overwrite(), Picos::from_us(18));
        assert_eq!(t.t_erase, Picos::from_ms(60));
        assert_eq!(t.rab_count, 4);
        assert_eq!(t.rdb_count, 4);
    }

    #[test]
    fn nominal_read_near_paper_100ns() {
        // Paper: "the read latency is around 100 ns, including three-phase
        // addressing (RL, tRCD, tRP and tBURST)".
        let t = PramTiming::table2();
        let r = t.nominal_read();
        assert!(r >= Picos::from_ns(100) && r <= Picos::from_ns(200), "{r}");
    }

    #[test]
    fn erase_is_about_3000x_overwrite() {
        // §V-A: erase ≈ 60 ms is "3K times longer than an overwrite".
        let t = PramTiming::table2();
        let ratio = t.t_erase / t.t_program_overwrite();
        assert!((3_000..4_000).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn burst_lengths() {
        assert_eq!(BurstLen::Bl4.bytes(), 8);
        assert_eq!(BurstLen::Bl8.bytes(), 16);
        assert_eq!(BurstLen::Bl16.bytes(), 32);
        assert_eq!(BurstLen::covering(1), BurstLen::Bl4);
        assert_eq!(BurstLen::covering(8), BurstLen::Bl4);
        assert_eq!(BurstLen::covering(9), BurstLen::Bl8);
        assert_eq!(BurstLen::covering(32), BurstLen::Bl16);
    }

    #[test]
    #[should_panic(expected = "burst must cover")]
    fn covering_rejects_oversized() {
        BurstLen::covering(33);
    }

    #[test]
    fn strobe_samples_stay_in_window() {
        let t = PramTiming::table2();
        let mut rng = SimRng::seed(1);
        for _ in 0..500 {
            let dqsck = t.sample_tdqsck(&mut rng);
            assert!(dqsck >= t.tdqsck_min && dqsck <= t.tdqsck_max);
            let dqss = t.sample_tdqss(&mut rng);
            assert!(dqss >= t.tdqss_min && dqss <= t.tdqss_max);
        }
    }

    #[test]
    fn nor_interface_is_slower() {
        let nor = PramTiming::nor_interface();
        let t2 = PramTiming::table2();
        assert!(nor.nominal_read() > t2.nominal_read() * 100);
        assert!(nor.t_program_set > t2.t_program_overwrite());
        assert_eq!(nor.rab_count, 1);
    }
}
