#![warn(missing_docs)]

//! # pram
//!
//! A cycle-approximate model of the paper's 3x-nm **multi-partition
//! phase-change memory** (PRAM) device and its LPDDR2-NVM interface.
//!
//! The model reproduces every architectural feature the DRAM-less paper
//! relies on:
//!
//! * **Multi-partition banks** — 16 partitions per bank, each split into
//!   two half-partitions of 64 resistive tiles (2048 bitlines × 4096
//!   wordlines), serving 256-bit (32 B) parallel I/O at bank level
//!   ([`geometry`]).
//! * **Multiple row buffers** — 4 row-address-buffer / row-data-buffer
//!   (RAB/RDB) pairs per module ([`buffers`]).
//! * **Three-phase addressing** — pre-active → activate → read/write
//!   command phases with the exact Table II timing ([`protocol`],
//!   [`timing`]).
//! * **Overlay window + program buffer** — the register-mapped write path
//!   (command code at `OWBA+0x80`, row address at `OWBA+0x8B`, burst size
//!   at `OWBA+0x93`, execute at `OWBA+0xC0`, program buffer at
//!   `OWBA+0x800`) ([`overlay`]).
//! * **Asymmetric writes** — a program is RESET+SET; overwriting a
//!   programmed word costs 18 µs while a SET-only program of a pristine
//!   word costs 10 µs, which is what makes the paper's *selective erasing*
//!   optimization work ([`cell`]).
//! * **Erase** — a 60 ms partition erase that blocks the partition.
//!
//! The functional state (actual bytes stored) is modeled alongside timing,
//! so tests can verify end-to-end data integrity of every optimization.
//!
//! # Examples
//!
//! ```
//! use pram::{PramModule, PramTiming, BufferId};
//! use sim_core::Picos;
//!
//! let mut module = PramModule::new(PramTiming::table2(), 1);
//! let row = pram::geometry::RowId::new(3, 17);
//!
//! // Three-phase read of an unwritten (pristine) row returns zeros.
//! let pre = module.pre_active(Picos::ZERO, BufferId::B0, row.upper(6));
//! let act = module.activate(pre.end, BufferId::B0, row.lower(6));
//! let (burst, data) =
//!     module.read_burst(act.end, sim_core::Picos::ZERO, BufferId::B0, 0, pram::timing::BurstLen::Bl16);
//! assert_eq!(data, vec![0u8; 32]);
//! assert!(burst.end > sim_core::Picos::ZERO);
//! ```

pub mod buffers;
pub mod cell;
pub mod channel;
pub mod device;
pub mod geometry;
pub mod overlay;
pub mod protocol;
pub mod timing;

pub use buffers::BufferId;
pub use channel::PramChannel;
pub use device::{PhaseTiming, PramModule, ProtocolError};
pub use geometry::{PartitionId, PramGeometry, RowId};
pub use overlay::OverlayWindow;
pub use protocol::{Command, SignalPacket};
pub use timing::{BurstLen, PramTiming};
