//! Row address buffers (RAB) and row data buffers (RDB).
//!
//! Section II-A: each PRAM module exposes multiple identical row buffers
//! through LPDDR2-NVM. A row buffer is the logical pair of a RAB (holding
//! the upper row address + command of an in-flight request) and an RDB
//! (holding the 256-bit contents of the sensed row). A buffer is selected
//! by its *buffer address* (BA), a 2-bit id on the signal packet.
//!
//! The FPGA controller's phase-skipping (§III-B) keys off this state:
//!
//! * target upper row already in a RAB → skip the **pre-active** phase;
//! * target row already sensed into an RDB → skip the **activate** phase.

use crate::cell::WORD_BYTES;
use crate::geometry::{RowId, UpperRow};
use std::fmt;

/// A buffer address: selects one RAB/RDB pair (2-bit BA signal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BufferId {
    /// Buffer 0.
    B0,
    /// Buffer 1.
    B1,
    /// Buffer 2.
    B2,
    /// Buffer 3.
    B3,
}

util::json_unit_enum!(BufferId { B0, B1, B2, B3 });

impl BufferId {
    /// All buffer ids in order.
    pub const ALL: [BufferId; 4] = [BufferId::B0, BufferId::B1, BufferId::B2, BufferId::B3];

    /// Numeric index.
    pub fn index(self) -> usize {
        match self {
            BufferId::B0 => 0,
            BufferId::B1 => 1,
            BufferId::B2 => 2,
            BufferId::B3 => 3,
        }
    }

    /// From a numeric index.
    ///
    /// # Panics
    ///
    /// Panics if `i > 3`.
    pub fn from_index(i: usize) -> Self {
        Self::ALL[i]
    }
}

impl fmt::Display for BufferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BA{}", self.index())
    }
}

/// State of one RAB/RDB pair.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RowBuffer {
    /// Upper row address latched by the last pre-active phase, if any.
    pub rab: Option<UpperRow>,
    /// Row currently sensed into the data buffer, with its contents.
    pub rdb: Option<(RowId, [u8; WORD_BYTES])>,
}

util::json_struct!(RowBuffer { rab, rdb });

/// The full row-buffer set of a module.
///
/// # Examples
///
/// ```
/// use pram::buffers::{BufferId, RowBufferSet};
/// use pram::geometry::RowId;
///
/// let mut bufs = RowBufferSet::new(4);
/// let row = RowId::new(1, 70);
/// bufs.latch_rab(BufferId::B2, row.upper(6));
/// assert!(bufs.rab_holds(BufferId::B2, row.upper(6)));
/// assert!(bufs.find_rdb(row).is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowBufferSet {
    buffers: Vec<RowBuffer>,
}

util::json_struct!(RowBufferSet { buffers });

impl RowBufferSet {
    /// Creates `n` empty buffers (Table II devices have 4).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or greater than 4 (the BA field is 2 bits).
    pub fn new(n: usize) -> Self {
        assert!((1..=4).contains(&n), "BA is a 2-bit field: 1..=4 buffers");
        RowBufferSet {
            buffers: vec![RowBuffer::default(); n],
        }
    }

    /// Number of buffer pairs.
    pub fn len(&self) -> usize {
        self.buffers.len()
    }

    /// Whether the set is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.buffers.is_empty()
    }

    /// Access one buffer pair.
    ///
    /// # Panics
    ///
    /// Panics if `ba` indexes beyond the construction size.
    pub fn get(&self, ba: BufferId) -> &RowBuffer {
        &self.buffers[ba.index()]
    }

    /// Latches an upper row address into a RAB (pre-active phase effect).
    /// Invalidates the paired RDB: the buffer now refers to a new region.
    pub fn latch_rab(&mut self, ba: BufferId, upper: UpperRow) {
        let b = &mut self.buffers[ba.index()];
        if b.rab != Some(upper) {
            b.rdb = None;
        }
        b.rab = Some(upper);
    }

    /// Fills the RDB with sensed row contents (activate phase effect).
    pub fn fill_rdb(&mut self, ba: BufferId, row: RowId, data: [u8; WORD_BYTES]) {
        self.buffers[ba.index()].rdb = Some((row, data));
    }

    /// Does buffer `ba`'s RAB hold `upper`? (pre-active skip test)
    pub fn rab_holds(&self, ba: BufferId, upper: UpperRow) -> bool {
        self.buffers[ba.index()].rab == Some(upper)
    }

    /// Any buffer whose RAB holds `upper`.
    pub fn find_rab(&self, upper: UpperRow) -> Option<BufferId> {
        self.buffers
            .iter()
            .position(|b| b.rab == Some(upper))
            .map(BufferId::from_index)
    }

    /// Any buffer whose RDB holds `row`'s data. (activate skip test)
    pub fn find_rdb(&self, row: RowId) -> Option<BufferId> {
        self.buffers
            .iter()
            .position(|b| matches!(b.rdb, Some((r, _)) if r == row))
            .map(BufferId::from_index)
    }

    /// Reads the RDB contents of buffer `ba`, if sensed.
    pub fn rdb_data(&self, ba: BufferId) -> Option<(RowId, [u8; WORD_BYTES])> {
        self.buffers[ba.index()].rdb
    }

    /// Invalidates any RDB holding `row` (called after the array contents
    /// change underneath, e.g. a program or erase).
    pub fn invalidate_row(&mut self, row: RowId) {
        for b in &mut self.buffers {
            if matches!(b.rdb, Some((r, _)) if r == row) {
                b.rdb = None;
            }
        }
    }

    /// Invalidates every buffer (used by partition erase).
    pub fn invalidate_all(&mut self) {
        for b in &mut self.buffers {
            b.rab = None;
            b.rdb = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_id_round_trip() {
        for i in 0..4 {
            assert_eq!(BufferId::from_index(i).index(), i);
        }
        assert_eq!(BufferId::B3.to_string(), "BA3");
    }

    #[test]
    fn latch_and_find_rab() {
        let mut s = RowBufferSet::new(4);
        let u = RowId::new(0, 100).upper(6);
        s.latch_rab(BufferId::B1, u);
        assert!(s.rab_holds(BufferId::B1, u));
        assert!(!s.rab_holds(BufferId::B0, u));
        assert_eq!(s.find_rab(u), Some(BufferId::B1));
    }

    #[test]
    fn fill_and_find_rdb() {
        let mut s = RowBufferSet::new(4);
        let row = RowId::new(2, 5);
        s.latch_rab(BufferId::B0, row.upper(6));
        s.fill_rdb(BufferId::B0, row, [0xEE; WORD_BYTES]);
        assert_eq!(s.find_rdb(row), Some(BufferId::B0));
        let (r, d) = s.rdb_data(BufferId::B0).unwrap();
        assert_eq!(r, row);
        assert_eq!(d, [0xEE; WORD_BYTES]);
    }

    #[test]
    fn relatching_different_upper_invalidates_rdb() {
        let mut s = RowBufferSet::new(4);
        let row = RowId::new(2, 5);
        s.latch_rab(BufferId::B0, row.upper(6));
        s.fill_rdb(BufferId::B0, row, [1; WORD_BYTES]);
        // New region into the same buffer: RDB must drop.
        s.latch_rab(BufferId::B0, RowId::new(3, 500).upper(6));
        assert!(s.rdb_data(BufferId::B0).is_none());
        // Re-latching the same upper keeps the RDB.
        let row2 = RowId::new(2, 6);
        s.latch_rab(BufferId::B1, row2.upper(6));
        s.fill_rdb(BufferId::B1, row2, [2; WORD_BYTES]);
        s.latch_rab(BufferId::B1, row2.upper(6));
        assert!(s.rdb_data(BufferId::B1).is_some());
    }

    #[test]
    fn invalidate_row_targets_only_that_row() {
        let mut s = RowBufferSet::new(4);
        let a = RowId::new(0, 1);
        let b = RowId::new(0, 2);
        s.fill_rdb(BufferId::B0, a, [1; WORD_BYTES]);
        s.fill_rdb(BufferId::B1, b, [2; WORD_BYTES]);
        s.invalidate_row(a);
        assert!(s.find_rdb(a).is_none());
        assert!(s.find_rdb(b).is_some());
    }

    #[test]
    fn invalidate_all_clears_everything() {
        let mut s = RowBufferSet::new(2);
        let a = RowId::new(0, 1);
        s.latch_rab(BufferId::B0, a.upper(6));
        s.fill_rdb(BufferId::B0, a, [1; WORD_BYTES]);
        s.invalidate_all();
        assert!(s.find_rab(a.upper(6)).is_none());
        assert!(s.find_rdb(a).is_none());
    }

    #[test]
    #[should_panic(expected = "2-bit field")]
    fn more_than_four_buffers_rejected() {
        RowBufferSet::new(5);
    }
}
