//! Functional cell-array state: what every word stores and whether its
//! cells are pristine.
//!
//! Section II-A: a PRAM cell is SET (crystalline, logic "1", ~300 °C) or
//! RESET (amorphous, logic "0", >600 °C). We do not simulate thermals;
//! what matters architecturally is the *program cost asymmetry*:
//!
//! * programming a **pristine** (all-RESET) word only needs SET pulses
//!   → `t_program_set` (10 µs);
//! * **overwriting** a programmed word needs RESET *then* SET
//!   → `t_program_set + t_reset_extra` (18 µs);
//! * an **erase** RESETs a whole partition back to pristine in one 60 ms
//!   blocking operation;
//! * **selective erasing** (§V-A) programs an all-zero word, which mimics
//!   a RESET of just that word: afterwards the word is pristine again and
//!   the next overwrite is SET-only.
//!
//! The array is sparse: unwritten rows are pristine zeros.

use crate::geometry::{PartitionId, PramGeometry, RowId};
use std::collections::HashMap;

/// Size of one program unit (row word) in bytes.
pub const WORD_BYTES: usize = 32;

/// One stored word and its cell condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Word {
    /// The 32 bytes held by the row.
    pub data: [u8; WORD_BYTES],
    /// Whether all cells are in the pristine (RESET) state, meaning the
    /// next program is SET-only.
    pub pristine: bool,
    /// Lifetime program count of this row (endurance accounting, §VII).
    pub programs: u32,
}

util::json_struct!(Word {
    data,
    pristine,
    programs
});

impl Default for Word {
    fn default() -> Self {
        Word {
            data: [0; WORD_BYTES],
            pristine: true,
            programs: 0,
        }
    }
}

/// The kind of cell operation a program performed, which decides latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramKind {
    /// Target word was pristine: SET pulses only.
    SetOnly,
    /// Target word held data: RESET then SET.
    Overwrite,
    /// All-zero data to a programmed word: behaves as a word-granular
    /// RESET (this is the *selective erasing* primitive).
    SelectiveErase,
    /// All-zero data to an already-pristine word: nothing to do.
    NoopErase,
}

util::json_unit_enum!(ProgramKind {
    SetOnly,
    Overwrite,
    SelectiveErase,
    NoopErase
});

/// The sparse cell array of one PRAM module.
///
/// # Examples
///
/// ```
/// use pram::cell::{CellArray, ProgramKind, WORD_BYTES};
/// use pram::geometry::{PramGeometry, RowId};
///
/// let mut cells = CellArray::new(PramGeometry::paper());
/// let row = RowId::new(0, 42);
/// let kind = cells.program(row, &[0xAB; WORD_BYTES]);
/// assert_eq!(kind, ProgramKind::SetOnly);
/// assert_eq!(cells.read(row)[0], 0xAB);
/// // A second write to the same word is an overwrite (RESET + SET).
/// assert_eq!(cells.program(row, &[0xCD; WORD_BYTES]), ProgramKind::Overwrite);
/// ```
#[derive(Debug, Clone)]
pub struct CellArray {
    geometry: PramGeometry,
    rows: HashMap<RowId, Word>,
    programs: u64,
    overwrites: u64,
    selective_erases: u64,
    erases: u64,
}

util::json_struct!(CellArray {
    geometry,
    rows,
    programs,
    overwrites,
    selective_erases,
    erases
});

impl CellArray {
    /// Creates an all-pristine array.
    pub fn new(geometry: PramGeometry) -> Self {
        CellArray {
            geometry,
            rows: HashMap::new(),
            programs: 0,
            overwrites: 0,
            selective_erases: 0,
            erases: 0,
        }
    }

    /// The array geometry.
    pub fn geometry(&self) -> &PramGeometry {
        &self.geometry
    }

    /// Reads a full word (pristine rows read as zeros).
    ///
    /// # Panics
    ///
    /// Panics if the row is outside the geometry.
    pub fn read(&self, row: RowId) -> [u8; WORD_BYTES] {
        self.check_row(row);
        self.rows
            .get(&row)
            .map(|w| w.data)
            .unwrap_or([0; WORD_BYTES])
    }

    /// Whether a word is pristine (next program is SET-only).
    pub fn is_pristine(&self, row: RowId) -> bool {
        self.rows.get(&row).map(|w| w.pristine).unwrap_or(true)
    }

    /// Programs a word, returning which cell operation was required.
    ///
    /// Programming all zeros into a non-pristine word *is* the selective
    /// erasing primitive: it RESETs the cells and restores pristineness.
    ///
    /// # Panics
    ///
    /// Panics if the row is outside the geometry.
    pub fn program(&mut self, row: RowId, data: &[u8; WORD_BYTES]) -> ProgramKind {
        self.check_row(row);
        let all_zero = data.iter().all(|&b| b == 0);
        let entry = self.rows.entry(row).or_default();
        let was_pristine = entry.pristine;
        entry.programs += 1;
        self.programs += 1;
        if all_zero {
            if was_pristine {
                ProgramKind::NoopErase
            } else {
                entry.data = [0; WORD_BYTES];
                entry.pristine = true;
                self.selective_erases += 1;
                ProgramKind::SelectiveErase
            }
        } else {
            entry.data = *data;
            entry.pristine = false;
            if was_pristine {
                ProgramKind::SetOnly
            } else {
                self.overwrites += 1;
                ProgramKind::Overwrite
            }
        }
    }

    /// Erases a whole partition back to pristine zeros.
    pub fn erase_partition(&mut self, partition: PartitionId) {
        self.rows.retain(|row, _| row.partition != partition);
        self.erases += 1;
    }

    /// Number of rows currently holding programmed (non-pristine) data.
    pub fn programmed_rows(&self) -> usize {
        self.rows.values().filter(|w| !w.pristine).count()
    }

    /// Endurance summary: `(max_programs_on_any_row, rows_ever_touched)`.
    /// The §VII lifetime discussion turns on keeping the max low — wear
    /// leveling trades total work for spread.
    pub fn endurance(&self) -> (u32, usize) {
        (
            self.rows.values().map(|w| w.programs).max().unwrap_or(0),
            self.rows.len(),
        )
    }

    /// Lifetime operation counts: `(programs, overwrites, selective_erases,
    /// partition_erases)`.
    pub fn op_counts(&self) -> (u64, u64, u64, u64) {
        (
            self.programs,
            self.overwrites,
            self.selective_erases,
            self.erases,
        )
    }

    fn check_row(&self, row: RowId) {
        assert!(
            row.partition.0 < self.geometry.partitions
                && row.array_row < self.geometry.rows_per_partition(),
            "row {row} outside geometry"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr() -> CellArray {
        CellArray::new(PramGeometry::paper())
    }

    #[test]
    fn unwritten_rows_read_pristine_zeros() {
        let cells = arr();
        let row = RowId::new(9, 1000);
        assert_eq!(cells.read(row), [0; WORD_BYTES]);
        assert!(cells.is_pristine(row));
    }

    #[test]
    fn program_then_read_back() {
        let mut cells = arr();
        let row = RowId::new(2, 7);
        let mut data = [0u8; WORD_BYTES];
        data[0] = 1;
        data[31] = 255;
        assert_eq!(cells.program(row, &data), ProgramKind::SetOnly);
        assert_eq!(cells.read(row), data);
        assert!(!cells.is_pristine(row));
    }

    #[test]
    fn overwrite_requires_reset_and_set() {
        let mut cells = arr();
        let row = RowId::new(0, 0);
        cells.program(row, &[1; WORD_BYTES]);
        assert_eq!(cells.program(row, &[2; WORD_BYTES]), ProgramKind::Overwrite);
        assert_eq!(cells.read(row), [2; WORD_BYTES]);
    }

    #[test]
    fn selective_erase_restores_pristine() {
        let mut cells = arr();
        let row = RowId::new(5, 123);
        cells.program(row, &[9; WORD_BYTES]);
        // Selective erase: program all zeros.
        assert_eq!(
            cells.program(row, &[0; WORD_BYTES]),
            ProgramKind::SelectiveErase
        );
        assert!(cells.is_pristine(row));
        assert_eq!(cells.read(row), [0; WORD_BYTES]);
        // Next program is SET-only again — the §V-A fast path.
        assert_eq!(cells.program(row, &[7; WORD_BYTES]), ProgramKind::SetOnly);
    }

    #[test]
    fn zero_program_on_pristine_is_noop() {
        let mut cells = arr();
        let row = RowId::new(1, 1);
        assert_eq!(cells.program(row, &[0; WORD_BYTES]), ProgramKind::NoopErase);
        assert!(cells.is_pristine(row));
    }

    #[test]
    fn partition_erase_clears_only_that_partition() {
        let mut cells = arr();
        let in_part = RowId::new(3, 10);
        let other = RowId::new(4, 10);
        cells.program(in_part, &[1; WORD_BYTES]);
        cells.program(other, &[2; WORD_BYTES]);
        cells.erase_partition(PartitionId(3));
        assert!(cells.is_pristine(in_part));
        assert_eq!(cells.read(in_part), [0; WORD_BYTES]);
        assert_eq!(cells.read(other), [2; WORD_BYTES]);
        assert_eq!(cells.programmed_rows(), 1);
    }

    #[test]
    fn op_counts_track_history() {
        let mut cells = arr();
        let row = RowId::new(0, 0);
        cells.program(row, &[1; WORD_BYTES]); // set-only
        cells.program(row, &[2; WORD_BYTES]); // overwrite
        cells.program(row, &[0; WORD_BYTES]); // selective erase
        cells.erase_partition(PartitionId(0));
        let (p, o, s, e) = cells.op_counts();
        assert_eq!((p, o, s, e), (3, 1, 1, 1));
    }

    #[test]
    #[should_panic(expected = "outside geometry")]
    fn out_of_range_row_rejected() {
        let mut cells = arr();
        cells.program(RowId::new(16, 0), &[1; WORD_BYTES]);
    }
}
