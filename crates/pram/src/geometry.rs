//! PRAM array geometry and addressing.
//!
//! Section II-A of the paper describes the 3x-nm multi-partition
//! architecture: a PRAM bank is built from **16 partitions**, each
//! containing **64 resistive tiles** of 2048 bitlines × 4096 wordlines,
//! split into two *half partitions* with local Y-decoders on both sides
//! and a dual-wordline scheme grouping every two tiles into a block. The
//! bank performs 256-bit (32 B) parallel I/O — the row-buffer word unit.
//!
//! Addressing follows the LPDDR2-NVM split used by three-phase addressing:
//! a row identifier is the pair *(partition, array row)*; its high bits —
//! the **upper row address** — travel in the pre-active phase and land in
//! a row address buffer (RAB), while the low bits — the **lower row
//! address** — travel with the activate phase.

use std::fmt;

/// Index of a partition within a bank (0..16 in the Table II device).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PartitionId(pub u8);

util::json_newtype!(PartitionId);

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// The upper part of a row address, as stored in a RAB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UpperRow(pub u32);

util::json_newtype!(UpperRow);

/// The lower part of a row address, delivered with the activate phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LowerRow(pub u32);

util::json_newtype!(LowerRow);

/// A full row identifier within one PRAM module: `(partition, array_row)`.
///
/// One row holds one 32-byte word — the unit buffered by a row data buffer
/// (RDB) and the program unit of a write.
///
/// # Examples
///
/// ```
/// use pram::geometry::RowId;
///
/// let row = RowId::new(5, 0b1011_010110);
/// let (u, l) = (row.upper(6), row.lower(6));
/// assert_eq!(RowId::from_parts(u, l, 6), row);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowId {
    /// Which partition the row lives in.
    pub partition: PartitionId,
    /// Row index inside the partition's array.
    pub array_row: u32,
}

util::json_struct!(RowId {
    partition,
    array_row
});

impl RowId {
    /// Creates a row identifier.
    pub fn new(partition: u8, array_row: u32) -> Self {
        RowId {
            partition: PartitionId(partition),
            array_row,
        }
    }

    /// The upper row address: the high bits of the array row. The
    /// partition-select bits travel in the *lower* row address, so rows in
    /// the same region of **any** partition share an upper address — this
    /// is what makes the RAB phase-skip fire on partition-striped streams.
    pub fn upper(self, lower_bits: u32) -> UpperRow {
        UpperRow(self.array_row >> lower_bits)
    }

    /// The lower row address, delivered directly with the activate phase:
    /// the partition select packed above the low `lower_bits` row bits.
    pub fn lower(self, lower_bits: u32) -> LowerRow {
        LowerRow(
            ((self.partition.0 as u32) << lower_bits) | (self.array_row & ((1 << lower_bits) - 1)),
        )
    }

    /// Reassembles a row identifier from its two addressing phases.
    pub fn from_parts(upper: UpperRow, lower: LowerRow, lower_bits: u32) -> Self {
        let partition = PartitionId((lower.0 >> lower_bits) as u8);
        let low = lower.0 & ((1 << lower_bits) - 1);
        RowId {
            partition,
            array_row: (upper.0 << lower_bits) | low,
        }
    }
}

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:r{}", self.partition, self.array_row)
    }
}

/// Static geometry of one PRAM module (Section II-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PramGeometry {
    /// Partitions per bank. Table II: 16.
    pub partitions: u8,
    /// Resistive tiles per partition. Paper: 64.
    pub tiles_per_partition: u32,
    /// Bitlines per tile. Paper: 2048.
    pub bitlines: u32,
    /// Wordlines per tile. Paper: 4096.
    pub wordlines: u32,
    /// Bytes served by one bank-level parallel access (one row word).
    /// Paper: 256 bits = 32 B.
    pub word_bytes: u32,
    /// How many low row-address bits form the *lower row address*.
    pub lower_row_bits: u32,
}

util::json_struct!(PramGeometry {
    partitions,
    tiles_per_partition,
    bitlines,
    wordlines,
    word_bytes,
    lower_row_bits,
});

impl Default for PramGeometry {
    fn default() -> Self {
        Self::paper()
    }
}

impl PramGeometry {
    /// The geometry of the paper's 3x-nm engineering sample.
    pub const fn paper() -> Self {
        PramGeometry {
            partitions: 16,
            tiles_per_partition: 64,
            bitlines: 2048,
            wordlines: 4096,
            word_bytes: 32,
            lower_row_bits: 6,
        }
    }

    /// Bits of storage in one tile.
    pub fn tile_bits(&self) -> u64 {
        self.bitlines as u64 * self.wordlines as u64
    }

    /// Capacity of one partition in bytes.
    pub fn partition_bytes(&self) -> u64 {
        self.tile_bits() * self.tiles_per_partition as u64 / 8
    }

    /// Capacity of the whole module (bank) in bytes.
    pub fn module_bytes(&self) -> u64 {
        self.partition_bytes() * self.partitions as u64
    }

    /// Number of 32-byte rows per partition.
    pub fn rows_per_partition(&self) -> u32 {
        (self.partition_bytes() / self.word_bytes as u64) as u32
    }

    /// Maps a module-local byte address to `(row, byte offset in word)`.
    ///
    /// Consecutive words stripe across partitions so that streaming
    /// accesses expose the partition-level parallelism the interleaving
    /// scheduler exploits (§V-A): word *i* lives in partition
    /// `i % partitions`, array row `i / partitions`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is beyond the module capacity.
    pub fn decode(&self, addr: u64) -> (RowId, u32) {
        assert!(
            addr < self.module_bytes(),
            "address {addr:#x} beyond module capacity {:#x}",
            self.module_bytes()
        );
        let word = addr / self.word_bytes as u64;
        let offset = (addr % self.word_bytes as u64) as u32;
        let partition = (word % self.partitions as u64) as u8;
        let array_row = (word / self.partitions as u64) as u32;
        (RowId::new(partition, array_row), offset)
    }

    /// Inverse of [`decode`](Self::decode) for offset 0.
    pub fn encode(&self, row: RowId) -> u64 {
        let word = row.array_row as u64 * self.partitions as u64 + row.partition.0 as u64;
        word * self.word_bytes as u64
    }

    /// Theoretical parallel I/O width of one partition in bits (the paper
    /// notes 64 ops per half-partition → 128-bit per partition).
    pub fn partition_io_bits(&self) -> u32 {
        // two half-partitions × 64 simultaneous tile operations / … the
        // net effect quoted by the paper is 128 bits per partition.
        128
    }

    /// Bank-level parallel I/O width in bits (256 in the paper).
    pub fn bank_io_bits(&self) -> u32 {
        self.word_bytes * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_capacity_matches_section_2() {
        let g = PramGeometry::paper();
        // 2048 BL x 4096 WL = 1 MiB per tile.
        assert_eq!(g.tile_bits(), 8 * 1024 * 1024);
        // 64 tiles -> 64 MiB per partition.
        assert_eq!(g.partition_bytes(), 64 << 20);
        // 16 partitions -> 1 GiB per module.
        assert_eq!(g.module_bytes(), 1 << 30);
        assert_eq!(g.rows_per_partition(), (64 << 20) / 32);
        assert_eq!(g.bank_io_bits(), 256);
        assert_eq!(g.partition_io_bits(), 128);
    }

    #[test]
    fn decode_stripes_words_across_partitions() {
        let g = PramGeometry::paper();
        let (r0, o0) = g.decode(0);
        let (r1, _) = g.decode(32);
        let (r16, _) = g.decode(32 * 16);
        assert_eq!(r0, RowId::new(0, 0));
        assert_eq!(o0, 0);
        assert_eq!(r1, RowId::new(1, 0));
        assert_eq!(r16, RowId::new(0, 1));
    }

    #[test]
    fn decode_encode_round_trip() {
        let g = PramGeometry::paper();
        for addr in [0u64, 32, 4096, 123 * 32, (1 << 30) - 32] {
            let (row, off) = g.decode(addr);
            assert_eq!(off, 0);
            assert_eq!(g.encode(row), addr);
        }
    }

    #[test]
    fn decode_offset_within_word() {
        let g = PramGeometry::paper();
        let (row_a, off_a) = g.decode(33);
        assert_eq!(row_a, RowId::new(1, 0));
        assert_eq!(off_a, 1);
    }

    #[test]
    #[should_panic(expected = "beyond module capacity")]
    fn decode_rejects_out_of_range() {
        PramGeometry::paper().decode(1 << 30);
    }

    #[test]
    fn row_upper_lower_round_trip() {
        for p in [0u8, 7, 15] {
            for r in [0u32, 1, 63, 64, 12345, (1 << 21) - 1] {
                let row = RowId::new(p, r);
                let rt = RowId::from_parts(row.upper(6), row.lower(6), 6);
                assert_eq!(rt, row, "partition {p} row {r}");
            }
        }
    }

    #[test]
    fn lower_distinguishes_partitions() {
        let a = RowId::new(1, 100).lower(6);
        let b = RowId::new(2, 100).lower(6);
        assert_ne!(a, b);
        // …while the upper address is shared across partitions, so a
        // partition-striped stream keeps hitting the same RAB entry.
        assert_eq!(RowId::new(1, 100).upper(6), RowId::new(2, 100).upper(6));
    }

    #[test]
    fn rows_in_same_region_share_upper() {
        // Rows 0..64 share an upper row address with lower_bits = 6,
        // which is what makes RAB phase-skipping fire on streams.
        let a = RowId::new(3, 0).upper(6);
        let b = RowId::new(3, 63).upper(6);
        let c = RowId::new(3, 64).upper(6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
