//! A LPDDR2-NVM channel: 16 PRAM modules sharing command and data buses.
//!
//! Figure 6a/14: the FPGA exposes two LPDDR2-NVM channels, each able to
//! hold 16 400-MHz PRAM modules. Within a channel the modules share a
//! 20-bit command/address bus and a 16-bit dq bus; both are contended
//! resources, which [`PramChannel`] models with [`Timeline`]s. The
//! controller crate drives this type.

use crate::device::PramModule;
use crate::timing::PramTiming;
use sim_core::time::Picos;
use sim_core::timeline::Timeline;

/// A channel of PRAM modules behind shared buses.
///
/// # Examples
///
/// ```
/// use pram::{PramChannel, PramTiming};
///
/// let ch = PramChannel::new(PramTiming::table2(), 16, 7);
/// assert_eq!(ch.module_count(), 16);
/// assert_eq!(ch.capacity_bytes(), 16 << 30); // 16 x 1 GiB modules
/// ```
#[derive(Debug, Clone)]
pub struct PramChannel {
    modules: Vec<PramModule>,
    cmd_bus: Timeline,
    dq_bus: Timeline,
    timing: PramTiming,
}

util::json_struct!(PramChannel {
    modules,
    cmd_bus,
    dq_bus,
    timing
});

sim_core::snapshot_via_json!(PramChannel, "pram/channel", 1);

impl PramChannel {
    /// Creates a channel of `n` modules.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(timing: PramTiming, n: usize, seed: u64) -> Self {
        assert!(n > 0, "a channel needs at least one module");
        PramChannel {
            modules: (0..n)
                .map(|i| PramModule::new(timing, seed.wrapping_add(i as u64)))
                .collect(),
            cmd_bus: Timeline::new(),
            dq_bus: Timeline::new(),
            timing,
        }
    }

    /// Number of modules on the channel.
    pub fn module_count(&self) -> usize {
        self.modules.len()
    }

    /// Total byte capacity across modules.
    pub fn capacity_bytes(&self) -> u64 {
        self.modules
            .iter()
            .map(|m| m.geometry().module_bytes())
            .sum()
    }

    /// The channel timing (same as every module's).
    pub fn timing(&self) -> &PramTiming {
        &self.timing
    }

    /// Immutable module access.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn module(&self, idx: usize) -> &PramModule {
        &self.modules[idx]
    }

    /// Mutable module access.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn module_mut(&mut self, idx: usize) -> &mut PramModule {
        &mut self.modules[idx]
    }

    /// Splits the channel into one module plus the two bus timelines, so a
    /// controller can reserve bus time while issuing phases to the module.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn module_and_buses(
        &mut self,
        idx: usize,
    ) -> (&mut PramModule, &mut Timeline, &mut Timeline) {
        let m = &mut self.modules[idx];
        (m, &mut self.cmd_bus, &mut self.dq_bus)
    }

    /// Reserves one command slot (a single 20-bit packet takes one
    /// interface clock on the shared command bus). Returns the slot start.
    pub fn reserve_cmd_slot(&mut self, earliest: Picos) -> Picos {
        self.cmd_bus.reserve(earliest, self.timing.tck())
    }

    /// Reserves the dq bus for `dur` (a data burst). Returns the start.
    pub fn reserve_dq(&mut self, earliest: Picos, dur: Picos) -> Picos {
        self.dq_bus.reserve(earliest, dur)
    }

    /// When would a dq reservation start (no mutation)?
    pub fn probe_dq(&self, earliest: Picos) -> Picos {
        self.dq_bus.probe(earliest)
    }

    /// Command-bus occupancy so far.
    pub fn cmd_busy(&self) -> Picos {
        self.cmd_bus.busy_total()
    }

    /// Data-bus occupancy so far.
    pub fn dq_busy(&self) -> Picos {
        self.dq_bus.busy_total()
    }

    /// Iterates the modules.
    pub fn modules(&self) -> std::slice::Iter<'_, PramModule> {
        self.modules.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_holds_16_modules_of_1gib() {
        let ch = PramChannel::new(PramTiming::table2(), 16, 0);
        assert_eq!(ch.module_count(), 16);
        assert_eq!(ch.capacity_bytes(), 16u64 << 30);
    }

    #[test]
    fn cmd_slots_serialize_on_the_bus() {
        let mut ch = PramChannel::new(PramTiming::table2(), 2, 0);
        let s1 = ch.reserve_cmd_slot(Picos::ZERO);
        let s2 = ch.reserve_cmd_slot(Picos::ZERO);
        assert_eq!(s1, Picos::ZERO);
        assert_eq!(s2, Picos::from_ns_f64(2.5)); // one tCK later
    }

    #[test]
    fn dq_bursts_serialize() {
        let mut ch = PramChannel::new(PramTiming::table2(), 2, 0);
        let b = Picos::from_ns(40);
        let s1 = ch.reserve_dq(Picos::ZERO, b);
        let s2 = ch.reserve_dq(Picos::ZERO, b);
        assert_eq!(s1, Picos::ZERO);
        assert_eq!(s2, b);
        assert_eq!(ch.dq_busy(), b * 2);
    }

    #[test]
    fn modules_have_distinct_rng_streams() {
        // Strobe jitter must differ across modules (seeded differently),
        // while the channel as a whole stays deterministic.
        let mut a = PramChannel::new(PramTiming::table2(), 2, 9);
        let mut b = PramChannel::new(PramTiming::table2(), 2, 9);
        use crate::buffers::BufferId;
        use crate::geometry::RowId;
        let row = RowId::new(0, 0);
        for ch in [&mut a, &mut b] {
            let (m, _, _) = ch.module_and_buses(0);
            let g = m.geometry().lower_row_bits;
            m.pre_active(Picos::ZERO, BufferId::B0, row.upper(g));
            m.activate(Picos::ZERO, BufferId::B0, row.lower(g));
        }
        let (ra, _) = a.module_mut(0).read_burst(
            Picos::from_us(1),
            Picos::ZERO,
            BufferId::B0,
            0,
            crate::timing::BurstLen::Bl16,
        );
        let (rb, _) = b.module_mut(0).read_burst(
            Picos::from_us(1),
            Picos::ZERO,
            BufferId::B0,
            0,
            crate::timing::BurstLen::Bl16,
        );
        assert_eq!(ra, rb, "same seed, same jitter");
    }

    #[test]
    #[should_panic(expected = "at least one module")]
    fn empty_channel_rejected() {
        PramChannel::new(PramTiming::table2(), 0, 0);
    }
}
