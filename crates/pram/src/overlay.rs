//! The overlay window and program buffer (Section II-B, Figure 4).
//!
//! Writing a storage core directly through an RDB would suspend every
//! operation on the module, so LPDDR2-NVM PRAM routes writes through a
//! register-mapped **overlay window**: a 128-byte block of
//! meta-information and control registers plus a **program buffer**, all
//! relocatable anywhere in the PRAM address space via the *overlay window
//! base address* (OWBA).
//!
//! Register map used by the paper's controller (§V-B):
//!
//! | Offset | Register |
//! |---|---|
//! | `0x00..0x80` | meta-information (window size, buffer offset/size) |
//! | `0x80` | command code |
//! | `0x8B` | data (row) address |
//! | `0x93` | multi-purpose (burst size in bytes) |
//! | `0xC0` | execute |
//! | `0xC8` | status |
//! | `0x800` | program buffer |

use crate::cell::WORD_BYTES;

/// Offsets of the overlay-window registers relative to OWBA.
pub mod regs {
    /// Command-code register (write opcode goes here first).
    pub const COMMAND_CODE: u64 = 0x80;
    /// Data (target row) address register.
    pub const DATA_ADDRESS: u64 = 0x8B;
    /// Multi-purpose register: burst size in bytes.
    pub const MULTI_PURPOSE: u64 = 0x93;
    /// Execute register: writing starts the array program.
    pub const EXECUTE: u64 = 0xC0;
    /// Status register: polls the in-progress program.
    pub const STATUS: u64 = 0xC8;
    /// Start of the program buffer.
    pub const PROGRAM_BUFFER: u64 = 0x800;
}

/// Command codes accepted by the command-code register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OverlayCommand {
    /// Buffered word program.
    BufferedProgram = 0xE9,
    /// Partition erase.
    Erase = 0x20,
}

util::json_unit_enum!(OverlayCommand {
    BufferedProgram,
    Erase
});

/// Status reported through the status register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverlayStatus {
    /// No operation pending or running.
    #[default]
    Ready,
    /// An array program/erase is in flight.
    Busy,
}

util::json_unit_enum!(OverlayStatus { Ready, Busy });

/// The overlay-window state machine of one PRAM module.
///
/// The window tracks the staged command, target address and burst size,
/// and buffers up to one row word of program data. The device "executes"
/// the staged program when the execute register is written — the actual
/// array timing is applied by [`crate::device::PramModule`].
///
/// # Examples
///
/// ```
/// use pram::overlay::{regs, OverlayWindow, StagedProgram};
///
/// let mut ow = OverlayWindow::new(0x0); // OWBA = 0
/// ow.write_reg(regs::COMMAND_CODE, 0xE9);
/// ow.write_reg(regs::DATA_ADDRESS, 4096);
/// ow.write_reg(regs::MULTI_PURPOSE, 32);
/// ow.fill_program_buffer(0, &[0xAA; 32]);
/// let staged = ow.execute().expect("a fully staged program");
/// assert_eq!(staged.target_addr, 4096);
/// assert_eq!(staged.data[0], 0xAA);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverlayWindow {
    /// Current overlay window base address.
    owba: u64,
    command: Option<u8>,
    target_addr: u64,
    burst_bytes: u32,
    program_buffer: [u8; WORD_BYTES],
    buffer_valid_bytes: u32,
    status: OverlayStatus,
    /// Meta-information block (window size, buffer offset, buffer size) as
    /// reported through the first 128 bytes of the window.
    meta: OverlayMeta,
}

util::json_struct!(OverlayWindow {
    owba,
    command,
    target_addr,
    burst_bytes,
    program_buffer,
    buffer_valid_bytes,
    status,
    meta,
});

/// The 128-byte meta-information block at the head of the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverlayMeta {
    /// Total window span in bytes.
    pub window_size: u32,
    /// Offset of the program buffer within the window.
    pub buffer_offset: u32,
    /// Program buffer capacity in bytes.
    pub buffer_size: u32,
}

util::json_struct!(OverlayMeta {
    window_size,
    buffer_offset,
    buffer_size
});

impl Default for OverlayMeta {
    fn default() -> Self {
        OverlayMeta {
            window_size: 0x1000,
            buffer_offset: regs::PROGRAM_BUFFER as u32,
            buffer_size: WORD_BYTES as u32,
        }
    }
}

/// A fully staged program ready for array execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StagedProgram {
    /// Command code that was staged.
    pub command: u8,
    /// Target module byte address.
    pub target_addr: u64,
    /// Bytes to program.
    pub burst_bytes: u32,
    /// Program-buffer contents.
    pub data: [u8; WORD_BYTES],
}

util::json_struct!(StagedProgram {
    command,
    target_addr,
    burst_bytes,
    data
});

impl OverlayWindow {
    /// Creates a window based at `owba`.
    pub fn new(owba: u64) -> Self {
        OverlayWindow {
            owba,
            command: None,
            target_addr: 0,
            burst_bytes: 0,
            program_buffer: [0; WORD_BYTES],
            buffer_valid_bytes: 0,
            status: OverlayStatus::Ready,
            meta: OverlayMeta::default(),
        }
    }

    /// Current base address.
    pub fn owba(&self) -> u64 {
        self.owba
    }

    /// Moves the window (the host may re-map it while a program runs —
    /// that is exactly the parallelism §II-B highlights).
    pub fn set_owba(&mut self, owba: u64) {
        self.owba = owba;
    }

    /// Meta-information block.
    pub fn meta(&self) -> &OverlayMeta {
        &self.meta
    }

    /// Is `addr` (module byte address) inside the current window?
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.owba && addr < self.owba + self.meta.window_size as u64
    }

    /// Current status-register value.
    pub fn status(&self) -> OverlayStatus {
        self.status
    }

    /// Marks the staged operation in flight / complete (driven by the
    /// device model as array timing elapses).
    pub fn set_status(&mut self, s: OverlayStatus) {
        self.status = s;
    }

    /// Writes a control register at `offset` (relative to OWBA).
    ///
    /// # Panics
    ///
    /// Panics if `offset` does not name a writable register.
    pub fn write_reg(&mut self, offset: u64, value: u64) {
        match offset {
            regs::COMMAND_CODE => self.command = Some(value as u8),
            regs::DATA_ADDRESS => self.target_addr = value,
            regs::MULTI_PURPOSE => self.burst_bytes = value as u32,
            _ => panic!("unwritable overlay register offset {offset:#x}"),
        }
    }

    /// Fills `data` into the program buffer at `offset` bytes in.
    ///
    /// # Panics
    ///
    /// Panics if the write overruns the buffer.
    pub fn fill_program_buffer(&mut self, offset: usize, data: &[u8]) {
        assert!(
            offset + data.len() <= WORD_BYTES,
            "program-buffer overrun: {}+{} > {WORD_BYTES}",
            offset,
            data.len()
        );
        self.program_buffer[offset..offset + data.len()].copy_from_slice(data);
        self.buffer_valid_bytes = self.buffer_valid_bytes.max((offset + data.len()) as u32);
    }

    /// Writes the execute register: consumes the staged state.
    ///
    /// Returns `None` if no command code was staged (a real device would
    /// raise an illegal-command status; callers treat `None` as a protocol
    /// error).
    pub fn execute(&mut self) -> Option<StagedProgram> {
        let command = self.command.take()?;
        let staged = StagedProgram {
            command,
            target_addr: self.target_addr,
            burst_bytes: if self.burst_bytes == 0 {
                self.buffer_valid_bytes
            } else {
                self.burst_bytes
            },
            data: self.program_buffer,
        };
        self.program_buffer = [0; WORD_BYTES];
        self.buffer_valid_bytes = 0;
        self.burst_bytes = 0;
        self.status = OverlayStatus::Busy;
        Some(staged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_offsets_match_section_5b() {
        assert_eq!(regs::COMMAND_CODE, 0x80);
        assert_eq!(regs::DATA_ADDRESS, 0x8B);
        assert_eq!(regs::MULTI_PURPOSE, 0x93);
        assert_eq!(regs::EXECUTE, 0xC0);
        assert_eq!(regs::PROGRAM_BUFFER, 0x800);
    }

    #[test]
    fn full_write_sequence_stages_program() {
        let mut ow = OverlayWindow::new(0);
        ow.write_reg(regs::COMMAND_CODE, OverlayCommand::BufferedProgram as u64);
        ow.write_reg(regs::DATA_ADDRESS, 0x1234);
        ow.write_reg(regs::MULTI_PURPOSE, 32);
        ow.fill_program_buffer(0, &[0x11; 32]);
        let p = ow.execute().unwrap();
        assert_eq!(p.command, 0xE9);
        assert_eq!(p.target_addr, 0x1234);
        assert_eq!(p.burst_bytes, 32);
        assert_eq!(p.data, [0x11; 32]);
        assert_eq!(ow.status(), OverlayStatus::Busy);
    }

    #[test]
    fn execute_without_command_is_protocol_error() {
        let mut ow = OverlayWindow::new(0);
        assert!(ow.execute().is_none());
    }

    #[test]
    fn execute_clears_staging() {
        let mut ow = OverlayWindow::new(0);
        ow.write_reg(regs::COMMAND_CODE, 0xE9);
        ow.fill_program_buffer(0, &[9; 8]);
        ow.execute().unwrap();
        // Second execute with nothing staged fails.
        assert!(ow.execute().is_none());
    }

    #[test]
    fn burst_bytes_defaults_to_filled_length() {
        let mut ow = OverlayWindow::new(0);
        ow.write_reg(regs::COMMAND_CODE, 0xE9);
        ow.fill_program_buffer(0, &[1; 16]);
        let p = ow.execute().unwrap();
        assert_eq!(p.burst_bytes, 16);
    }

    #[test]
    fn window_relocation() {
        let mut ow = OverlayWindow::new(0x1000);
        assert!(ow.contains(0x1000));
        assert!(ow.contains(0x1FFF));
        assert!(!ow.contains(0x2000));
        ow.set_owba(0x8000);
        assert!(!ow.contains(0x1000));
        assert!(ow.contains(0x8800));
    }

    #[test]
    fn partial_buffer_fills_compose() {
        let mut ow = OverlayWindow::new(0);
        ow.write_reg(regs::COMMAND_CODE, 0xE9);
        ow.fill_program_buffer(0, &[1; 16]);
        ow.fill_program_buffer(16, &[2; 16]);
        let p = ow.execute().unwrap();
        assert_eq!(&p.data[..16], &[1; 16]);
        assert_eq!(&p.data[16..], &[2; 16]);
    }

    #[test]
    #[should_panic(expected = "program-buffer overrun")]
    fn buffer_overrun_rejected() {
        let mut ow = OverlayWindow::new(0);
        ow.fill_program_buffer(20, &[0; 16]);
    }

    #[test]
    #[should_panic(expected = "unwritable overlay register")]
    fn bad_register_rejected() {
        let mut ow = OverlayWindow::new(0);
        ow.write_reg(0x40, 1);
    }
}
