//! The LPDDR2-NVM three-phase addressing command set and its 20-bit DDR
//! signal-packet encoding.
//!
//! Section II-B / §V-B: the command generator disassembles a target
//! address into an upper row address, a lower row address, a row-buffer
//! address and a column address, then delivers them to the PRAM through
//! 20-bit DDR signal packets. A packet carries the operation type
//! (2–4 bits), the row buffer address (2 bits) and a 7–15-bit address
//! fragment of either the overlay window or the target partition.

use crate::buffers::BufferId;
use crate::geometry::{LowerRow, UpperRow};
use crate::timing::BurstLen;
use std::fmt;

/// A three-phase addressing command as issued by the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Pre-active phase: select RAB `ba` and latch the upper row address.
    PreActive {
        /// Target row buffer.
        ba: BufferId,
        /// Upper row address to latch.
        upper: UpperRow,
    },
    /// Activate phase: compose the full row address from RAB `ba` plus the
    /// lower row address and sense the row into the paired RDB.
    Activate {
        /// Row buffer whose RAB supplies the upper address.
        ba: BufferId,
        /// Lower row address delivered directly.
        lower: LowerRow,
    },
    /// Read phase: burst data out of RDB `ba` starting at `col`.
    Read {
        /// Source row buffer.
        ba: BufferId,
        /// Column (byte offset within the 32 B row word).
        col: u8,
        /// Burst length.
        bl: BurstLen,
    },
    /// Write phase: burst data towards the device (a register write in the
    /// overlay window, or a program-buffer fill).
    Write {
        /// Target row buffer (carries the BA field of the packet).
        ba: BufferId,
        /// Column / register offset low bits.
        col: u8,
        /// Burst length.
        bl: BurstLen,
    },
}

impl util::json::ToJson for Command {
    fn to_json(&self) -> util::json::Json {
        use util::json::Json;
        let (tag, fields) = match *self {
            Command::PreActive { ba, upper } => (
                "PreActive",
                vec![
                    ("ba".to_string(), ba.to_json()),
                    ("upper".to_string(), upper.to_json()),
                ],
            ),
            Command::Activate { ba, lower } => (
                "Activate",
                vec![
                    ("ba".to_string(), ba.to_json()),
                    ("lower".to_string(), lower.to_json()),
                ],
            ),
            Command::Read { ba, col, bl } => (
                "Read",
                vec![
                    ("ba".to_string(), ba.to_json()),
                    ("col".to_string(), col.to_json()),
                    ("bl".to_string(), bl.to_json()),
                ],
            ),
            Command::Write { ba, col, bl } => (
                "Write",
                vec![
                    ("ba".to_string(), ba.to_json()),
                    ("col".to_string(), col.to_json()),
                    ("bl".to_string(), bl.to_json()),
                ],
            ),
        };
        Json::Obj(vec![(tag.to_string(), Json::Obj(fields))])
    }
}

impl util::json::FromJson for Command {
    fn from_json(v: &util::json::Json) -> Result<Self, util::json::JsonError> {
        use util::json::{field, Json, JsonError};
        let pairs = match v {
            Json::Obj(pairs) if pairs.len() == 1 => pairs,
            _ => return Err(JsonError::new("expected single-key Command object")),
        };
        let (tag, body) = &pairs[0];
        match tag.as_str() {
            "PreActive" => Ok(Command::PreActive {
                ba: field(body, "ba")?,
                upper: field(body, "upper")?,
            }),
            "Activate" => Ok(Command::Activate {
                ba: field(body, "ba")?,
                lower: field(body, "lower")?,
            }),
            "Read" => Ok(Command::Read {
                ba: field(body, "ba")?,
                col: field(body, "col")?,
                bl: field(body, "bl")?,
            }),
            "Write" => Ok(Command::Write {
                ba: field(body, "ba")?,
                col: field(body, "col")?,
                bl: field(body, "bl")?,
            }),
            other => Err(JsonError::new(format!("unknown Command variant {other:?}"))),
        }
    }
}

impl Command {
    /// Operation-type code on the signal packet (2–4 bits).
    pub fn opcode(&self) -> u8 {
        match self {
            Command::PreActive { .. } => 0b01,
            Command::Activate { .. } => 0b10,
            Command::Read { .. } => 0b0011,
            Command::Write { .. } => 0b0111,
        }
    }

    /// Encodes this command as one 20-bit DDR signal packet.
    pub fn encode(&self) -> SignalPacket {
        let (op, ba, addr) = match *self {
            Command::PreActive { ba, upper } => (self.opcode(), ba.index() as u8, upper.0 & 0x7FFF),
            Command::Activate { ba, lower } => (self.opcode(), ba.index() as u8, lower.0 & 0x7FFF),
            Command::Read { ba, col, bl } => (
                self.opcode(),
                ba.index() as u8,
                ((bl.cycles() as u32) << 7) | col as u32,
            ),
            Command::Write { ba, col, bl } => (
                self.opcode(),
                ba.index() as u8,
                ((bl.cycles() as u32) << 7) | col as u32,
            ),
        };
        SignalPacket::new(op, ba, addr)
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Command::PreActive { ba, upper } => write!(f, "PRE-ACTIVE {ba} upper={:#x}", upper.0),
            Command::Activate { ba, lower } => write!(f, "ACTIVATE {ba} lower={:#x}", lower.0),
            Command::Read { ba, col, bl } => write!(f, "READ {ba} col={col} {bl:?}"),
            Command::Write { ba, col, bl } => write!(f, "WRITE {ba} col={col} {bl:?}"),
        }
    }
}

/// A 20-bit DDR signal packet: `[op:4][ba:2][addr:15]` packed little-end
/// into a `u32` (only the low 21 bits are meaningful; the op field uses
/// 2–4 bits as in §V-B, we reserve 4).
///
/// # Examples
///
/// ```
/// use pram::protocol::{Command, SignalPacket};
/// use pram::buffers::BufferId;
/// use pram::geometry::RowId;
///
/// let cmd = Command::PreActive { ba: BufferId::B2, upper: RowId::new(1, 99).upper(6) };
/// let pkt = cmd.encode();
/// assert_eq!(pkt.ba(), 2);
/// assert_eq!(pkt.op(), cmd.opcode());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SignalPacket(u32);

util::json_newtype!(SignalPacket);

impl SignalPacket {
    /// Packs the three fields.
    ///
    /// # Panics
    ///
    /// Panics if a field exceeds its width (`op` 4 bits, `ba` 2 bits,
    /// `addr` 15 bits).
    pub fn new(op: u8, ba: u8, addr: u32) -> Self {
        assert!(op < 16, "op field is 4 bits");
        assert!(ba < 4, "ba field is 2 bits");
        assert!(addr < (1 << 15), "addr field is 15 bits");
        SignalPacket(((op as u32) << 17) | ((ba as u32) << 15) | addr)
    }

    /// Operation-type field.
    pub fn op(self) -> u8 {
        (self.0 >> 17) as u8
    }

    /// Row-buffer address field.
    pub fn ba(self) -> u8 {
        ((self.0 >> 15) & 0b11) as u8
    }

    /// Address fragment field.
    pub fn addr(self) -> u32 {
        self.0 & 0x7FFF
    }

    /// Raw packed bits.
    pub fn bits(self) -> u32 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::RowId;

    #[test]
    fn packet_fields_round_trip() {
        let p = SignalPacket::new(0b0111, 3, 0x5A5A);
        assert_eq!(p.op(), 0b0111);
        assert_eq!(p.ba(), 3);
        assert_eq!(p.addr(), 0x5A5A);
    }

    #[test]
    fn packet_fits_in_21_bits() {
        let p = SignalPacket::new(0b1111, 3, 0x7FFF);
        assert!(p.bits() < (1 << 21));
    }

    #[test]
    #[should_panic(expected = "addr field is 15 bits")]
    fn oversized_addr_rejected() {
        SignalPacket::new(0, 0, 1 << 15);
    }

    #[test]
    fn opcodes_are_distinct() {
        let row = RowId::new(0, 0);
        let cmds = [
            Command::PreActive {
                ba: BufferId::B0,
                upper: row.upper(6),
            },
            Command::Activate {
                ba: BufferId::B0,
                lower: row.lower(6),
            },
            Command::Read {
                ba: BufferId::B0,
                col: 0,
                bl: BurstLen::Bl16,
            },
            Command::Write {
                ba: BufferId::B0,
                col: 0,
                bl: BurstLen::Bl16,
            },
        ];
        for i in 0..cmds.len() {
            for j in i + 1..cmds.len() {
                assert_ne!(cmds[i].opcode(), cmds[j].opcode());
            }
        }
    }

    #[test]
    fn encode_carries_ba() {
        for ba in BufferId::ALL {
            let cmd = Command::Read {
                ba,
                col: 5,
                bl: BurstLen::Bl8,
            };
            assert_eq!(cmd.encode().ba() as usize, ba.index());
        }
    }

    #[test]
    fn display_is_informative() {
        let cmd = Command::Activate {
            ba: BufferId::B1,
            lower: RowId::new(0, 9).lower(6),
        };
        assert!(cmd.to_string().contains("ACTIVATE"));
        assert!(cmd.to_string().contains("BA1"));
    }
}
