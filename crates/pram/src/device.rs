//! The PRAM module (one package/chip): functional state + timing.
//!
//! A [`PramModule`] glues together the cell array, the RAB/RDB set, the
//! overlay window and the per-partition occupancy timelines, and executes
//! the three-phase addressing protocol with the Table II timing. It
//! deliberately does *not* model the shared channel buses — those belong
//! to [`crate::channel::PramChannel`], because command and dq bandwidth
//! are contended across the 16 modules of a channel.
//!
//! All timing methods take an *earliest start* instant and return the
//! actual [`PhaseTiming`]; the caller (the FPGA controller model) chains
//! phases and exploits overlap, which is exactly where the paper's
//! multi-resource aware interleaving lives.

use crate::buffers::{BufferId, RowBufferSet};
use crate::cell::{CellArray, ProgramKind, WORD_BYTES};
use crate::geometry::{LowerRow, PartitionId, PramGeometry, RowId, UpperRow};
use crate::overlay::{OverlayStatus, OverlayWindow, StagedProgram};
use crate::timing::{BurstLen, PramTiming};
use sim_core::energy::{EnergyAccount, EnergyBook, Joules};
use sim_core::time::Picos;
use sim_core::timeline::TimelineBank;
use sim_core::SimRng;

/// Per-event energy constants for the PRAM array, chosen so that the
/// write:read energy asymmetry of phase-change cells is preserved
/// (programs are ~30× costlier than sensing).
pub mod energy {
    use sim_core::energy::Joules;

    /// Latching an upper row address into a RAB.
    pub const PRE_ACTIVE: Joules = Joules::from_pj(100);
    /// Sensing one 32 B row into an RDB.
    pub const ACTIVATE_SENSE: Joules = Joules::from_pj(500);
    /// Moving one byte over the dq bus.
    pub const BURST_PER_BYTE: Joules = Joules::from_pj(10);
    /// SET pulses for one word.
    pub const PROGRAM_SET: Joules = Joules::from_nj(15);
    /// Extra RESET pulses when overwriting.
    pub const PROGRAM_RESET_EXTRA: Joules = Joules::from_nj(10);
    /// A full partition erase.
    pub const ERASE: Joules = Joules::from_nj(1_000_000);
}

/// Typed LPDDR2-NVM protocol violations.
///
/// The hardware controller's command generator upholds these invariants
/// by construction ([`crate::PramChannel`] callers plan phases before
/// issuing them), so on that request path they are unreachable; the
/// fallible `try_*` module methods surface them as values for callers —
/// fault-injection harnesses, fuzzers, alternative controllers — that
/// cannot offer the same guarantee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolError {
    /// Activate issued against a RAB that was never latched.
    EmptyRab(BufferId),
    /// Read burst issued against an RDB holding no sensed row.
    EmptyRdb(BufferId),
    /// Execute register written with no staged program command.
    NothingStaged,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ProtocolError::EmptyRab(ba) => write!(f, "activate on {ba} with empty RAB"),
            ProtocolError::EmptyRdb(ba) => write!(f, "read burst on {ba} with empty RDB"),
            ProtocolError::NothingStaged => {
                write!(f, "execute register written with no staged command")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Start/end instants of one executed protocol phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseTiming {
    /// When the phase actually began.
    pub start: Picos,
    /// When its effect (data/state) is available.
    pub end: Picos,
}

util::json_struct!(PhaseTiming { start, end });

impl PhaseTiming {
    /// A zero-length phase at `at` (used for skipped phases).
    pub fn instant(at: Picos) -> Self {
        PhaseTiming { start: at, end: at }
    }

    /// Phase duration.
    pub fn duration(&self) -> Picos {
        self.end - self.start
    }
}

/// Raw operation counters of one module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModuleStats {
    /// Pre-active phases executed.
    pub pre_actives: u64,
    /// Activate phases executed (array sensing operations).
    pub activates: u64,
    /// Read bursts served.
    pub read_bursts: u64,
    /// Write bursts accepted (register writes + program-buffer fills).
    pub write_bursts: u64,
    /// Array programs executed.
    pub programs: u64,
    /// SET-only programs (pristine targets).
    pub set_only_programs: u64,
    /// RESET+SET overwrites.
    pub overwrite_programs: u64,
    /// Word-granular selective erases.
    pub selective_erases: u64,
    /// Partition erases.
    pub partition_erases: u64,
    /// Programs paused to let a read through (write-pausing extension).
    pub write_pauses: u64,
}

util::json_struct!(ModuleStats {
    pre_actives,
    activates,
    read_bursts,
    write_bursts,
    programs,
    set_only_programs,
    overwrite_programs,
    selective_erases,
    partition_erases,
    write_pauses,
});

/// Fixed-slot energy accumulator for the module's five components.
///
/// The module charges energy on every protocol phase, and per-charge
/// string-keyed ledger lookups dominated the device's cost on streaming
/// workloads — so the hot path adds to plain fields and [`Self::book`]
/// materializes the ledger on demand (once per report).
#[derive(Debug, Clone, Copy, Default)]
struct ModuleEnergy {
    rab: EnergyAccount,
    sense: EnergyAccount,
    bus: EnergyAccount,
    program: EnergyAccount,
    erase: EnergyAccount,
}

util::json_struct!(ModuleEnergy {
    rab,
    sense,
    bus,
    program,
    erase
});

impl ModuleEnergy {
    fn book(&self) -> EnergyBook {
        let mut book = EnergyBook::new();
        for (label, acct) in [
            ("pram.rab", self.rab),
            ("pram.sense", self.sense),
            ("pram.bus", self.bus),
            ("pram.program", self.program),
            ("pram.erase", self.erase),
        ] {
            if acct.events > 0 {
                book.charge_many(label, acct.energy, acct.events);
            }
        }
        book
    }
}

/// One PRAM package: 1 bank × 16 partitions with 4 row buffers and an
/// overlay window, per Section II.
#[derive(Debug, Clone)]
pub struct PramModule {
    timing: PramTiming,
    geometry: PramGeometry,
    cells: CellArray,
    buffers: RowBufferSet,
    overlay: OverlayWindow,
    /// Array occupancy per partition: sensing, programs and erases
    /// serialize per partition but proceed in parallel across partitions.
    partitions: TimelineBank,
    rng: SimRng,
    energy: ModuleEnergy,
    stats: ModuleStats,
    /// Completion instant of the in-flight overlay program, if any.
    program_done_at: Option<Picos>,
    /// Whether in-flight programs may be paused to let reads through
    /// (the write-pausing extension of §VII, after Qureshi et al. \[66\]).
    write_pausing: bool,
    /// Per-partition window of the most recent in-flight program.
    program_windows: Vec<Option<PhaseTiming>>,
}

util::json_struct!(PramModule {
    timing,
    geometry,
    cells,
    buffers,
    overlay,
    partitions,
    rng,
    energy,
    stats,
    program_done_at,
    write_pausing,
    program_windows
});

sim_core::snapshot_via_json!(PramModule, "pram/module", 1);

impl PramModule {
    /// Creates a module with the paper geometry and the given timing.
    pub fn new(timing: PramTiming, seed: u64) -> Self {
        Self::with_geometry(timing, PramGeometry::paper(), seed)
    }

    /// Creates a module with explicit geometry (for scaled-down tests).
    pub fn with_geometry(timing: PramTiming, geometry: PramGeometry, seed: u64) -> Self {
        PramModule {
            buffers: RowBufferSet::new(timing.rdb_count),
            partitions: TimelineBank::new(geometry.partitions as usize),
            cells: CellArray::new(geometry),
            overlay: OverlayWindow::new(0),
            timing,
            geometry,
            rng: SimRng::seed(seed ^ 0x50524145), // "PRAE"
            energy: ModuleEnergy::default(),
            stats: ModuleStats::default(),
            program_done_at: None,
            write_pausing: false,
            program_windows: vec![None; geometry.partitions as usize],
        }
    }

    /// Enables or disables write pausing: with it on, an activate that
    /// collides with an in-flight program suspends the program (paying
    /// the pause/resume overhead and stretching the program) instead of
    /// queueing behind it.
    pub fn set_write_pausing(&mut self, on: bool) {
        self.write_pausing = on;
    }

    /// Whether write pausing is enabled.
    pub fn write_pausing(&self) -> bool {
        self.write_pausing
    }

    /// The timing parameter set.
    pub fn timing(&self) -> &PramTiming {
        &self.timing
    }

    /// The geometry.
    pub fn geometry(&self) -> &PramGeometry {
        &self.geometry
    }

    /// Row-buffer state (for phase-skip decisions by the controller).
    pub fn buffers(&self) -> &RowBufferSet {
        &self.buffers
    }

    /// The overlay window.
    pub fn overlay(&self) -> &OverlayWindow {
        &self.overlay
    }

    /// Mutable overlay access (the controller's translator writes its
    /// registers through the write-phase path).
    pub fn overlay_mut(&mut self) -> &mut OverlayWindow {
        &mut self.overlay
    }

    /// Raw operation counters.
    pub fn stats(&self) -> &ModuleStats {
        &self.stats
    }

    /// Energy charged by this module so far, materialized as a ledger.
    pub fn energy(&self) -> EnergyBook {
        self.energy.book()
    }

    /// Direct functional read of a row (testing/verification back door —
    /// carries no timing).
    pub fn peek(&self, row: RowId) -> [u8; WORD_BYTES] {
        self.cells.read(row)
    }

    /// Whether `row`'s cells are pristine (next program is SET-only).
    pub fn is_pristine(&self, row: RowId) -> bool {
        self.cells.is_pristine(row)
    }

    /// Endurance summary of the module's cell array: see
    /// [`crate::cell::CellArray::endurance`].
    pub fn endurance(&self) -> (u32, usize) {
        self.cells.endurance()
    }

    /// When the partition `p` is next free.
    pub fn partition_free_at(&self, p: PartitionId) -> Picos {
        self.partitions.get(p.0 as usize).free_at()
    }

    /// Executes a pre-active phase: latches `upper` into RAB `ba`.
    ///
    /// Takes tRP on the module's control path.
    pub fn pre_active(&mut self, at: Picos, ba: BufferId, upper: UpperRow) -> PhaseTiming {
        self.buffers.latch_rab(ba, upper);
        self.stats.pre_actives += 1;
        self.energy.rab.charge(energy::PRE_ACTIVE);
        PhaseTiming {
            start: at,
            end: at + self.timing.trp(),
        }
    }

    /// Executes an activate phase: composes the row address from RAB `ba`
    /// and `lower`, senses the row into the paired RDB.
    ///
    /// Occupies the target *partition* for tRCD, so activations to
    /// different partitions proceed in parallel — the property the
    /// interleaving scheduler exploits.
    ///
    /// # Panics
    ///
    /// Panics if RAB `ba` was never latched (protocol violation);
    /// [`Self::try_activate`] surfaces that as a typed error instead.
    pub fn activate(&mut self, at: Picos, ba: BufferId, lower: LowerRow) -> PhaseTiming {
        self.try_activate(at, ba, lower)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Self::activate`] with protocol violations surfaced as values.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::EmptyRab`] if RAB `ba` was never latched.
    pub fn try_activate(
        &mut self,
        at: Picos,
        ba: BufferId,
        lower: LowerRow,
    ) -> Result<PhaseTiming, ProtocolError> {
        let upper = self
            .buffers
            .get(ba)
            .rab
            .ok_or(ProtocolError::EmptyRab(ba))?;
        let row = RowId::from_parts(upper, lower, self.geometry.lower_row_bits);
        let p = row.partition.0 as usize;
        // Write pausing: if an in-flight program owns the partition,
        // suspend it, run the sense, then resume the program with its
        // remaining time plus the pause/resume overhead.
        if self.write_pausing {
            if let Some(w) = self.program_windows[p] {
                if at >= w.start && at < w.end {
                    let remaining = w.end - at;
                    let start = at + self.timing.t_pause_resume;
                    let end = start + self.timing.trcd;
                    let resumed_end = end + remaining + self.timing.t_pause_resume;
                    self.partitions.get_mut(p).block_until(resumed_end);
                    self.program_windows[p] = Some(PhaseTiming {
                        start: end,
                        end: resumed_end,
                    });
                    if self.program_done_at == Some(w.end) {
                        self.program_done_at = Some(resumed_end);
                    }
                    self.stats.write_pauses += 1;
                    let data = self.cells.read(row);
                    self.buffers.fill_rdb(ba, row, data);
                    self.stats.activates += 1;
                    self.energy.sense.charge(energy::ACTIVATE_SENSE);
                    return Ok(PhaseTiming { start, end });
                }
            }
        }
        let lane = self.partitions.get_mut(p);
        let start = lane.reserve(at, self.timing.trcd);
        let end = start + self.timing.trcd;
        let data = self.cells.read(row);
        self.buffers.fill_rdb(ba, row, data);
        self.stats.activates += 1;
        self.energy.sense.charge(energy::ACTIVATE_SENSE);
        Ok(PhaseTiming { start, end })
    }

    /// Executes a read phase: bursts `bl` bytes from RDB `ba` starting at
    /// column `col`.
    ///
    /// `cmd_at` is when the read-phase command was issued; the data burst
    /// begins after the read preamble (RL + tDQSCK), *or* when the shared
    /// dq bus frees (`bus_free`), whichever is later — so back-to-back
    /// bursts on a channel pitch at tBURST with their preambles hidden,
    /// as in the Fig. 12 timing diagram. The caller reserves the dq bus
    /// for the final `[end - tburst, end]` window.
    ///
    /// # Panics
    ///
    /// Panics if RDB `ba` holds no sensed row (protocol violation;
    /// [`Self::try_read_burst`] surfaces that as a typed error), or the
    /// burst overruns the 32 B word.
    pub fn read_burst(
        &mut self,
        cmd_at: Picos,
        bus_free: Picos,
        ba: BufferId,
        col: u8,
        bl: BurstLen,
    ) -> (PhaseTiming, Vec<u8>) {
        self.try_read_burst(cmd_at, bus_free, ba, col, bl)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Self::read_burst`] with protocol violations surfaced as values.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::EmptyRdb`] if RDB `ba` holds no sensed row.
    ///
    /// # Panics
    ///
    /// Panics if the burst overruns the 32 B word (an address-math bug in
    /// the caller, not a runtime protocol state).
    pub fn try_read_burst(
        &mut self,
        cmd_at: Picos,
        bus_free: Picos,
        ba: BufferId,
        col: u8,
        bl: BurstLen,
    ) -> Result<(PhaseTiming, Vec<u8>), ProtocolError> {
        let t = self.try_read_burst_timed(cmd_at, bus_free, ba, col, bl)?;
        let (_, data) = self.buffers.rdb_data(ba).expect("checked by timed burst");
        let lo = col as usize;
        let hi = lo + bl.bytes() as usize;
        Ok((t, data[lo..hi].to_vec()))
    }

    /// Timing-only [`Self::try_read_burst`]: advances the exact same
    /// device state (RNG preamble draw, burst stats, bus energy) without
    /// materializing a copy of the data — the accelerator's performance
    /// model only consumes timing, and the per-burst `Vec` dominated the
    /// fill path's allocations.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::EmptyRdb`] if RDB `ba` holds no sensed row.
    ///
    /// # Panics
    ///
    /// Panics if the burst overruns the 32 B word.
    pub fn try_read_burst_timed(
        &mut self,
        cmd_at: Picos,
        bus_free: Picos,
        ba: BufferId,
        col: u8,
        bl: BurstLen,
    ) -> Result<PhaseTiming, ProtocolError> {
        if self.buffers.rdb_data(ba).is_none() {
            return Err(ProtocolError::EmptyRdb(ba));
        }
        let hi = col as usize + bl.bytes() as usize;
        assert!(
            hi <= WORD_BYTES,
            "burst overruns row word: col={col} {bl:?}"
        );
        let preamble = self.timing.rl() + self.timing.sample_tdqsck(&mut self.rng);
        let burst_start = (cmd_at + preamble).max(bus_free);
        let end = burst_start + self.timing.tburst(bl);
        self.stats.read_bursts += 1;
        self.energy
            .bus
            .charge(energy::BURST_PER_BYTE.scaled(bl.bytes() as u64));
        Ok(PhaseTiming { start: cmd_at, end })
    }

    /// Panicking wrapper of [`Self::try_read_burst_timed`], mirroring
    /// [`Self::read_burst`].
    ///
    /// # Panics
    ///
    /// Panics if RDB `ba` holds no sensed row, or the burst overruns the
    /// 32 B word.
    pub fn read_burst_timed(
        &mut self,
        cmd_at: Picos,
        bus_free: Picos,
        ba: BufferId,
        col: u8,
        bl: BurstLen,
    ) -> PhaseTiming {
        self.try_read_burst_timed(cmd_at, bus_free, ba, col, bl)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Executes a write phase towards the overlay window: a register write
    /// or a program-buffer fill, addressed by the offset relative to OWBA.
    ///
    /// The returned timing covers the write preamble (WL + tDQSS) and the
    /// burst; the caller arbitrates the channel dq bus.
    ///
    /// # Panics
    ///
    /// Panics if `offset` falls outside the overlay window, or a register
    /// write carries more than 8 bytes.
    pub fn write_overlay(&mut self, at: Picos, offset: u64, data: &[u8]) -> PhaseTiming {
        use crate::overlay::regs;
        let bl = BurstLen::covering(data.len() as u32);
        let preamble = self.timing.wl() + self.timing.sample_tdqss(&mut self.rng);
        let end = at + preamble + self.timing.tburst(bl);
        self.stats.write_bursts += 1;
        self.energy
            .bus
            .charge(energy::BURST_PER_BYTE.scaled(data.len() as u64));

        if offset >= regs::PROGRAM_BUFFER {
            let buf_off = (offset - regs::PROGRAM_BUFFER) as usize;
            self.overlay.fill_program_buffer(buf_off, data);
        } else {
            assert!(data.len() <= 8, "register write wider than 8 bytes");
            let mut v = [0u8; 8];
            v[..data.len()].copy_from_slice(data);
            self.overlay.write_reg(offset, u64::from_le_bytes(v));
        }
        PhaseTiming { start: at, end }
    }

    /// Writes the execute register: starts the staged array program.
    ///
    /// The program occupies the target partition for the cell time (10 µs
    /// SET-only / 18 µs overwrite / 8 µs word-granular selective erase)
    /// plus tWRA, and invalidates any RDB holding the row. Returns the
    /// phase covering the whole program.
    ///
    /// # Panics
    ///
    /// Panics if no program was staged (protocol violation;
    /// [`Self::try_execute_program`] surfaces that as a typed error).
    pub fn execute_program(&mut self, at: Picos) -> PhaseTiming {
        self.try_execute_program(at)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Self::execute_program`] with protocol violations surfaced as
    /// values.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::NothingStaged`] if no program was staged in the
    /// overlay window.
    pub fn try_execute_program(&mut self, at: Picos) -> Result<PhaseTiming, ProtocolError> {
        let staged = self.overlay.execute().ok_or(ProtocolError::NothingStaged)?;
        Ok(self.apply_program(at, staged))
    }

    fn apply_program(&mut self, at: Picos, staged: StagedProgram) -> PhaseTiming {
        let (row, offset) = self.geometry.decode(staged.target_addr);
        assert_eq!(offset, 0, "programs are word-aligned");
        // Read-modify-write semantics for partial bursts.
        let mut word = self.cells.read(row);
        let n = staged.burst_bytes.min(WORD_BYTES as u32) as usize;
        word[..n].copy_from_slice(&staged.data[..n]);

        let kind = self.cells.program(row, &word);
        let (cell_time, e) = match kind {
            ProgramKind::SetOnly => {
                self.stats.set_only_programs += 1;
                (self.timing.t_program_set, energy::PROGRAM_SET)
            }
            ProgramKind::Overwrite => {
                self.stats.overwrite_programs += 1;
                (
                    self.timing.t_program_overwrite(),
                    energy::PROGRAM_SET + energy::PROGRAM_RESET_EXTRA,
                )
            }
            ProgramKind::SelectiveErase => {
                self.stats.selective_erases += 1;
                // RESET pulses only: the t_reset_extra component.
                (self.timing.t_reset_extra, energy::PROGRAM_RESET_EXTRA)
            }
            ProgramKind::NoopErase => (Picos::ZERO, Joules::ZERO),
        };
        self.stats.programs += 1;
        self.energy.program.charge(e);

        let lane = self.partitions.get_mut(row.partition.0 as usize);
        let dur = cell_time + self.timing.twra;
        let start = lane.reserve(at, dur);
        let end = start + dur;
        self.buffers.invalidate_row(row);
        self.program_done_at = Some(end);
        self.program_windows[row.partition.0 as usize] = Some(PhaseTiming { start, end });
        self.overlay.set_status(OverlayStatus::Busy);
        PhaseTiming { start, end }
    }

    /// Relocates one row's contents to another row of the module (the
    /// start-gap wear-leveling copy): a sense of `from` followed by a
    /// program of its word into `to`. Occupies both partitions; a no-op
    /// program if `from` is pristine.
    pub fn relocate(&mut self, at: Picos, from: RowId, to: RowId) -> PhaseTiming {
        let word = self.cells.read(from);
        let sense = {
            let lane = self.partitions.get_mut(from.partition.0 as usize);
            let start = lane.reserve(at, self.timing.trcd);
            PhaseTiming {
                start,
                end: start + self.timing.trcd,
            }
        };
        self.energy.sense.charge(energy::ACTIVATE_SENSE);
        let kind = self.cells.program(to, &word);
        let (cell_time, e) = match kind {
            ProgramKind::SetOnly => (self.timing.t_program_set, energy::PROGRAM_SET),
            ProgramKind::Overwrite => (
                self.timing.t_program_overwrite(),
                energy::PROGRAM_SET + energy::PROGRAM_RESET_EXTRA,
            ),
            ProgramKind::SelectiveErase => (self.timing.t_reset_extra, energy::PROGRAM_RESET_EXTRA),
            ProgramKind::NoopErase => (Picos::ZERO, Joules::ZERO),
        };
        self.energy.program.charge(e);
        let lane = self.partitions.get_mut(to.partition.0 as usize);
        let dur = cell_time + self.timing.twra;
        let start = lane.reserve(sense.end, dur);
        self.buffers.invalidate_row(from);
        self.buffers.invalidate_row(to);
        PhaseTiming {
            start: sense.start,
            end: start + dur,
        }
    }

    /// Word-granular *selective erase* (§V-A): programs all-zero data into
    /// `row`, mimicking RESET pulses so the next program is SET-only.
    ///
    /// This is the internal fast path the controller uses for background
    /// pre-erasing; it occupies the partition for the RESET time + tWRA
    /// and is a no-op (zero duration) on an already-pristine word.
    pub fn pre_erase(&mut self, at: Picos, row: RowId) -> PhaseTiming {
        if self.cells.is_pristine(row) {
            return PhaseTiming::instant(at);
        }
        self.cells.program(row, &[0u8; WORD_BYTES]);
        self.stats.programs += 1;
        self.stats.selective_erases += 1;
        self.energy.program.charge(energy::PROGRAM_RESET_EXTRA);
        let lane = self.partitions.get_mut(row.partition.0 as usize);
        let dur = self.timing.t_reset_extra + self.timing.twra;
        let start = lane.reserve(at, dur);
        self.buffers.invalidate_row(row);
        PhaseTiming {
            start,
            end: start + dur,
        }
    }

    /// Polls the status register at time `at`.
    pub fn poll_status(&mut self, at: Picos) -> OverlayStatus {
        if let Some(done) = self.program_done_at {
            if at >= done {
                self.program_done_at = None;
                self.overlay.set_status(OverlayStatus::Ready);
            }
        }
        self.overlay.status()
    }

    /// Erases partition `p`: a ~60 ms blocking operation that RESETs every
    /// word and stalls all requests to the partition (§V-A).
    pub fn erase_partition(&mut self, at: Picos, p: PartitionId) -> PhaseTiming {
        let lane = self.partitions.get_mut(p.0 as usize);
        let start = lane.reserve(at, self.timing.t_erase);
        let end = start + self.timing.t_erase;
        self.cells.erase_partition(p);
        self.buffers.invalidate_all();
        self.stats.partition_erases += 1;
        self.energy.erase.charge(energy::ERASE);
        PhaseTiming { start, end }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module() -> PramModule {
        PramModule::new(PramTiming::table2(), 42)
    }

    /// Runs a full three-phase read of `row`, returning the end time.
    fn full_read(m: &mut PramModule, at: Picos, row: RowId) -> (Picos, Vec<u8>) {
        let g = m.geometry().lower_row_bits;
        let pre = m.pre_active(at, BufferId::B0, row.upper(g));
        let act = m.activate(pre.end, BufferId::B0, row.lower(g));
        let (rd, data) = m.read_burst(act.end, Picos::ZERO, BufferId::B0, 0, BurstLen::Bl16);
        (rd.end, data)
    }

    /// Runs a full overlay write of `word` to `row`, returning the program
    /// completion time.
    fn full_write(m: &mut PramModule, at: Picos, row: RowId, word: [u8; WORD_BYTES]) -> Picos {
        use crate::overlay::regs;
        let addr = m.geometry().encode(row);
        let t1 = m.write_overlay(at, regs::COMMAND_CODE, &[0xE9]);
        let t2 = m.write_overlay(t1.end, regs::DATA_ADDRESS, &addr.to_le_bytes());
        let t3 = m.write_overlay(t2.end, regs::MULTI_PURPOSE, &[32]);
        let t4 = m.write_overlay(t3.end, regs::PROGRAM_BUFFER, &word);
        m.execute_program(t4.end).end
    }

    #[test]
    fn three_phase_read_takes_roughly_100ns() {
        let mut m = module();
        let (end, data) = full_read(&mut m, Picos::ZERO, RowId::new(0, 0));
        assert_eq!(data, vec![0; 32]);
        // tRP 7.5 + tRCD 80 + RL 15 + tDQSCK 2.5..5.5 + tBURST 40 ≈ 145-148 ns.
        assert!(
            end >= Picos::from_ns(140) && end <= Picos::from_ns(155),
            "{end}"
        );
    }

    #[test]
    fn write_then_read_round_trips_data() {
        let mut m = module();
        let row = RowId::new(4, 77);
        let word = [0x5A; WORD_BYTES];
        let done = full_write(&mut m, Picos::ZERO, row, word);
        let (_, data) = full_read(&mut m, done, row);
        assert_eq!(data, word.to_vec());
    }

    #[test]
    fn set_only_vs_overwrite_latency() {
        let mut m = module();
        let row = RowId::new(0, 10);
        let t0 = Picos::ZERO;
        let first_done = full_write(&mut m, t0, row, [1; WORD_BYTES]);
        let first_program = first_done; // includes 10us program
        let second_done = full_write(&mut m, first_done, row, [2; WORD_BYTES]);
        let first_cost = first_program - t0;
        let second_cost = second_done - first_done;
        // Overwrite costs ~8 us more (RESET+SET vs SET).
        assert!(
            second_cost > first_cost + Picos::from_us(7),
            "{first_cost} vs {second_cost}"
        );
        assert!(first_cost > Picos::from_us(10));
        assert!(second_cost > Picos::from_us(18));
    }

    #[test]
    fn selective_erase_is_short_and_restores_set_only_path() {
        let mut m = module();
        let row = RowId::new(0, 3);
        let d1 = full_write(&mut m, Picos::ZERO, row, [7; WORD_BYTES]);
        // Program zeros: selective erase (RESET only ≈ 8 us).
        let d2 = full_write(&mut m, d1, row, [0; WORD_BYTES]);
        let erase_cost = d2 - d1;
        assert!(erase_cost < Picos::from_us(9), "{erase_cost}");
        // The word is pristine: the next write is SET-only (~10 us).
        let d3 = full_write(&mut m, d2, row, [9; WORD_BYTES]);
        let w_cost = d3 - d2;
        assert!(w_cost < Picos::from_us(12), "{w_cost}");
        assert_eq!(m.stats().selective_erases, 1);
        assert_eq!(m.stats().set_only_programs, 2);
    }

    #[test]
    fn activations_to_different_partitions_overlap() {
        let mut m = module();
        let r0 = RowId::new(0, 0);
        let r1 = RowId::new(1, 0);
        let g = m.geometry().lower_row_bits;
        m.pre_active(Picos::ZERO, BufferId::B0, r0.upper(g));
        m.pre_active(Picos::ZERO, BufferId::B1, r1.upper(g));
        let a0 = m.activate(Picos::from_ns(10), BufferId::B0, r0.lower(g));
        let a1 = m.activate(Picos::from_ns(10), BufferId::B1, r1.lower(g));
        // Parallel: both start at 10 ns.
        assert_eq!(a0.start, a1.start);
    }

    #[test]
    fn activations_to_same_partition_serialize() {
        let mut m = module();
        let r0 = RowId::new(2, 0);
        let r1 = RowId::new(2, 100);
        let g = m.geometry().lower_row_bits;
        m.pre_active(Picos::ZERO, BufferId::B0, r0.upper(g));
        m.pre_active(Picos::ZERO, BufferId::B1, r1.upper(g));
        let a0 = m.activate(Picos::from_ns(10), BufferId::B0, r0.lower(g));
        let a1 = m.activate(Picos::from_ns(10), BufferId::B1, r1.lower(g));
        assert_eq!(a1.start, a0.end);
    }

    #[test]
    fn erase_blocks_partition_for_60ms() {
        let mut m = module();
        let row = RowId::new(5, 8);
        full_write(&mut m, Picos::ZERO, row, [3; WORD_BYTES]);
        let e = m.erase_partition(Picos::from_us(100), PartitionId(5));
        assert_eq!(e.duration(), Picos::from_ms(60));
        // Data gone.
        assert_eq!(m.peek(row), [0; WORD_BYTES]);
        // Subsequent activate to that partition waits for the erase.
        let g = m.geometry().lower_row_bits;
        m.pre_active(e.start, BufferId::B0, row.upper(g));
        let act = m.activate(e.start, BufferId::B0, row.lower(g));
        assert!(act.start >= e.end);
    }

    #[test]
    fn program_invalidates_stale_rdb() {
        let mut m = module();
        let row = RowId::new(1, 5);
        // Sense pristine row into RDB.
        let (_, data) = full_read(&mut m, Picos::ZERO, row);
        assert_eq!(data, vec![0; 32]);
        // Program new data.
        let done = full_write(&mut m, Picos::from_us(1), row, [8; WORD_BYTES]);
        // RDB no longer claims to hold the row; a fresh read senses again.
        assert!(m.buffers().find_rdb(row).is_none());
        let (_, data) = full_read(&mut m, done, row);
        assert_eq!(data, vec![8; 32]);
    }

    #[test]
    fn status_polling_tracks_program() {
        let mut m = module();
        let row = RowId::new(0, 0);
        use crate::overlay::regs;
        let addr = m.geometry().encode(row);
        m.write_overlay(Picos::ZERO, regs::COMMAND_CODE, &[0xE9]);
        m.write_overlay(Picos::ZERO, regs::DATA_ADDRESS, &addr.to_le_bytes());
        m.write_overlay(Picos::ZERO, regs::PROGRAM_BUFFER, &[1; 32]);
        let p = m.execute_program(Picos::from_ns(500));
        assert_eq!(
            m.poll_status(p.start + Picos::from_us(1)),
            OverlayStatus::Busy
        );
        assert_eq!(m.poll_status(p.end), OverlayStatus::Ready);
    }

    #[test]
    fn energy_accumulates_by_component() {
        let mut m = module();
        let row = RowId::new(0, 0);
        full_write(&mut m, Picos::ZERO, row, [1; WORD_BYTES]);
        full_read(&mut m, Picos::from_us(100), row);
        assert!(m.energy().energy_of("pram.program") > Joules::ZERO);
        assert!(m.energy().energy_of("pram.sense") > Joules::ZERO);
        assert!(m.energy().energy_of("pram.bus") > Joules::ZERO);
        // Programs dominate sensing.
        assert!(m.energy().energy_of("pram.program") > m.energy().energy_of("pram.sense"));
    }

    #[test]
    #[should_panic(expected = "empty RAB")]
    fn activate_without_preactive_panics() {
        let mut m = module();
        m.activate(Picos::ZERO, BufferId::B0, LowerRow(0));
    }

    #[test]
    #[should_panic(expected = "empty RDB")]
    fn read_without_activate_panics() {
        let mut m = module();
        m.read_burst(Picos::ZERO, Picos::ZERO, BufferId::B0, 0, BurstLen::Bl16);
    }

    #[test]
    fn try_variants_surface_protocol_errors_as_values() {
        let mut m = module();
        assert_eq!(
            m.try_activate(Picos::ZERO, BufferId::B1, LowerRow(0)).err(),
            Some(ProtocolError::EmptyRab(BufferId::B1))
        );
        assert_eq!(
            m.try_read_burst(Picos::ZERO, Picos::ZERO, BufferId::B2, 0, BurstLen::Bl16)
                .err(),
            Some(ProtocolError::EmptyRdb(BufferId::B2))
        );
        assert_eq!(
            m.try_execute_program(Picos::ZERO).err(),
            Some(ProtocolError::NothingStaged)
        );
        // Errors mutate nothing: the module still services a clean read.
        assert_eq!(m.stats().activates, 0);
        let row = RowId::new(0, 0);
        let g = m.geometry().lower_row_bits;
        let pre = m.pre_active(Picos::ZERO, BufferId::B1, row.upper(g));
        assert!(m.try_activate(pre.end, BufferId::B1, row.lower(g)).is_ok());
        assert!(m
            .try_read_burst(Picos::ZERO, Picos::ZERO, BufferId::B2, 0, BurstLen::Bl16)
            .is_err());
        assert!(m
            .try_read_burst(Picos::ZERO, Picos::ZERO, BufferId::B1, 0, BurstLen::Bl16)
            .is_ok());
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;

    fn module() -> PramModule {
        PramModule::new(PramTiming::table2(), 9)
    }

    /// Issues a full overlay write so a program is in flight.
    fn start_program(m: &mut PramModule, at: Picos, row: RowId) -> PhaseTiming {
        use crate::overlay::regs;
        let addr = m.geometry().encode(row);
        let t = m.write_overlay(at, regs::COMMAND_CODE, &[0xE9]);
        let t = m.write_overlay(t.end, regs::DATA_ADDRESS, &addr.to_le_bytes());
        let t = m.write_overlay(t.end, regs::PROGRAM_BUFFER, &[0x77; WORD_BYTES]);
        m.execute_program(t.end)
    }

    #[test]
    fn write_pausing_lets_reads_preempt_programs() {
        let mut m = module();
        m.set_write_pausing(true);
        let row = RowId::new(4, 10);
        let prog = start_program(&mut m, Picos::ZERO, row);
        // A read to the same partition mid-program.
        let mid = prog.start + Picos::from_us(3);
        let other = RowId::new(4, 500);
        let lb = m.geometry().lower_row_bits;
        m.pre_active(mid, BufferId::B0, other.upper(lb));
        let act = m.activate(mid, BufferId::B0, other.lower(lb));
        // Preempts: the sense begins right after the pause overhead, far
        // before the original program end.
        assert!(act.start < prog.end, "read should not queue behind program");
        assert_eq!(act.start, mid + m.timing().t_pause_resume);
        assert_eq!(m.stats().write_pauses, 1);
        // The program stretched past its original end.
        let done = m.poll_status(prog.end);
        assert_eq!(done, crate::overlay::OverlayStatus::Busy);
    }

    #[test]
    fn without_pausing_reads_queue_behind_programs() {
        let mut m = module();
        let row = RowId::new(4, 10);
        let prog = start_program(&mut m, Picos::ZERO, row);
        let mid = prog.start + Picos::from_us(3);
        let other = RowId::new(4, 500);
        let lb = m.geometry().lower_row_bits;
        m.pre_active(mid, BufferId::B0, other.upper(lb));
        let act = m.activate(mid, BufferId::B0, other.lower(lb));
        assert!(act.start >= prog.end, "read must wait for the program");
        assert_eq!(m.stats().write_pauses, 0);
    }

    #[test]
    fn paused_program_still_completes_functionally() {
        let mut m = module();
        m.set_write_pausing(true);
        let row = RowId::new(2, 7);
        let prog = start_program(&mut m, Picos::ZERO, row);
        let lb = m.geometry().lower_row_bits;
        let other = RowId::new(2, 600);
        m.pre_active(
            prog.start + Picos::from_us(1),
            BufferId::B1,
            other.upper(lb),
        );
        m.activate(
            prog.start + Picos::from_us(1),
            BufferId::B1,
            other.lower(lb),
        );
        // Data landed regardless of the pause.
        assert_eq!(m.peek(row), [0x77; WORD_BYTES]);
        // Status eventually clears (after the stretched window).
        let late = prog.end + Picos::from_us(100);
        assert_eq!(m.poll_status(late), crate::overlay::OverlayStatus::Ready);
    }

    #[test]
    fn pause_outside_program_window_is_normal_queueing() {
        let mut m = module();
        m.set_write_pausing(true);
        let row = RowId::new(1, 1);
        let prog = start_program(&mut m, Picos::ZERO, row);
        // Activate after the program finished: plain path, no pause.
        let lb = m.geometry().lower_row_bits;
        let other = RowId::new(1, 99);
        m.pre_active(prog.end, BufferId::B0, other.upper(lb));
        let act = m.activate(prog.end, BufferId::B0, other.lower(lb));
        assert_eq!(m.stats().write_pauses, 0);
        assert!(act.start >= prog.end);
    }

    #[test]
    fn relocate_moves_data_and_charges_both_partitions() {
        let mut m = module();
        let from = RowId::new(3, 40);
        let to = RowId::new(7, 41);
        let prog = start_program(&mut m, Picos::ZERO, from);
        let r = m.relocate(prog.end, from, to);
        assert_eq!(m.peek(to), [0x77; WORD_BYTES]);
        // Source keeps its contents (start-gap copies, the old slot is
        // then logically reused).
        assert_eq!(m.peek(from), [0x77; WORD_BYTES]);
        // Sense + SET program.
        assert!(r.end - r.start >= Picos::from_us(10));
        // Both partitions were occupied.
        assert!(m.partition_free_at(PartitionId(3)) > prog.end);
        assert!(m.partition_free_at(PartitionId(7)) >= r.end);
    }

    #[test]
    fn relocate_pristine_source_is_cheap() {
        let mut m = module();
        let from = RowId::new(0, 5);
        let to = RowId::new(1, 5);
        let r = m.relocate(Picos::ZERO, from, to);
        // Pristine source: programming zeros to a pristine target is a
        // no-op — only the sense is paid.
        assert!(r.end - r.start < Picos::from_us(1), "{:?}", r.end - r.start);
    }
}
