//! Property-based tests of the core data structures and protocol
//! invariants, using the in-tree `util::for_each_case!` harness: each
//! case draws its inputs from a deterministic per-case generator, so
//! failures replay exactly and the harness names the failing case.

use pram::cell::{CellArray, WORD_BYTES};
use pram::geometry::{PramGeometry, RowId};
use pram_ctrl::addr::AddressMap;
use pram_ctrl::wear::StartGap;
use pram_ctrl::{
    EccModel, EccOutcome, PramController, RetireMap, RetryPolicy, SchedulerKind, SubsystemConfig,
};
use sim_core::stats::TimeSeries;
use sim_core::{Picos, Timeline};
use std::collections::HashSet;
use util::for_each_case;

/// Row addressing round-trips through the pre-active/activate split
/// for every partition/row/lower-bit width combination.
#[test]
fn row_split_round_trips() {
    for_each_case!(64, |rng| {
        let partition = rng.range_u64(0, 15) as u8;
        let row = rng.range_u64(0, (1 << 21) - 1) as u32;
        let lower_bits = rng.range_u64(4, 9) as u32;
        let r = RowId::new(partition, row);
        let back = RowId::from_parts(r.upper(lower_bits), r.lower(lower_bits), lower_bits);
        assert_eq!(back, r);
    });
}

/// The global striping function maps distinct addresses to distinct
/// (target, offset) pairs and stays within bounds.
#[test]
fn address_map_is_injective() {
    for_each_case!(64, |rng| {
        let mut addrs = HashSet::new();
        for _ in 0..rng.range_usize(1, 63) {
            addrs.insert(rng.range_u64(0, (1 << 24) - 1));
        }
        let m = AddressMap::paper();
        let mut seen = HashSet::new();
        for a in addrs {
            let t = m.decompose(a);
            assert!(t.channel < 2);
            assert!(t.module < 16);
            assert!(
                seen.insert((t.channel, t.module, t.module_addr)),
                "collision at address {a}"
            );
        }
    });
}

/// Splitting a request covers exactly its byte range, in order, with
/// no fragment crossing a word boundary.
#[test]
fn split_partitions_the_range() {
    for_each_case!(64, |rng| {
        let addr = rng.range_u64(0, (1 << 20) - 1);
        let len = rng.range_u64(1, 2047) as u32;
        let m = AddressMap::paper();
        let frags = m.split(addr, len);
        let mut cur = addr;
        for f in &frags {
            assert_eq!(f.global_addr, cur);
            assert!(f.len >= 1 && f.len <= 32);
            let first_word = f.global_addr / 32;
            let last_word = (f.global_addr + f.len as u64 - 1) / 32;
            assert_eq!(first_word, last_word, "fragment crosses a word");
            cur += f.len as u64;
        }
        assert_eq!(cur, addr + len as u64);
    });
}

/// The cell array stores exactly what was programmed, regardless of
/// operation order, and pristine state tracks all-zero content.
#[test]
fn cell_array_is_a_faithful_store() {
    for_each_case!(64, |rng| {
        let mut cells = CellArray::new(PramGeometry::paper());
        let mut model: std::collections::HashMap<RowId, u8> = Default::default();
        for _ in 0..rng.range_usize(1, 99) {
            let row = RowId::new(rng.range_u64(0, 15) as u8, rng.range_u64(0, 255) as u32);
            let b = rng.next_u64() as u8;
            cells.program(row, &[b; WORD_BYTES]);
            model.insert(row, b);
        }
        for (row, b) in model {
            assert_eq!(cells.read(row), [b; WORD_BYTES]);
            assert_eq!(cells.is_pristine(row), b == 0);
        }
    });
}

/// Timeline reservations never overlap and never start before
/// requested.
#[test]
fn timeline_reservations_are_disjoint() {
    for_each_case!(64, |rng| {
        let mut t = Timeline::new();
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for _ in 0..rng.range_usize(1, 49) {
            let earliest = rng.range_u64(0, 9_999);
            let dur = rng.range_u64(1, 499);
            let start = t.reserve(Picos::from_ns(earliest), Picos::from_ns(dur));
            assert!(start >= Picos::from_ns(earliest));
            let s = start.as_ps();
            let e = s + dur * 1000;
            for &(os, oe) in &spans {
                assert!(e <= os || s >= oe, "overlap: [{s},{e}) vs [{os},{oe})");
            }
            spans.push((s, e));
        }
    });
}

/// Start-gap stays a bijection under arbitrary write streams.
#[test]
fn start_gap_remains_bijective() {
    for_each_case!(64, |rng| {
        let lines = rng.range_u64(2, 63);
        let interval = rng.range_u64(1, 15);
        let writes = rng.range_u64(0, 1_999);
        let mut sg = StartGap::new(lines, interval);
        for _ in 0..writes {
            sg.on_write();
        }
        let mut seen = HashSet::new();
        for l in 0..lines {
            let p = sg.map(l);
            assert!(p < sg.slots());
            assert!(seen.insert(p), "two lines mapped to slot {p}");
        }
    });
}

/// ECC never "corrects" more bit flips than its symbol strength: the
/// classification is exact, not optimistic, for every (strength, flips)
/// combination.
#[test]
fn ecc_correction_never_exceeds_strength() {
    for_each_case!(64, |rng| {
        let strength = rng.range_u64(0, 8) as u32;
        let flips = rng.range_u64(0, 12) as u32;
        match EccModel::new(strength).classify(flips) {
            EccOutcome::Clean => assert_eq!(flips, 0),
            EccOutcome::Corrected(n) => {
                assert_eq!(n, flips);
                assert!(
                    n >= 1 && n <= strength,
                    "corrected {n} > strength {strength}"
                );
            }
            EccOutcome::Uncorrectable(n) => {
                assert_eq!(n, flips);
                assert!(n > strength, "uncorrectable {n} within strength {strength}");
            }
        }
    });
}

/// Retirement composed with start-gap rotation stays a bijection while
/// lines are actively being retired and the gap keeps moving: no two
/// live logical lines ever share a physical slot.
#[test]
fn retirement_plus_start_gap_stays_bijective() {
    for_each_case!(64, |rng| {
        let lines = rng.range_u64(8, 127);
        let spares = rng.range_u64(1, 15).min(lines - 1);
        let interval = rng.range_u64(1, 15);
        let mut sg = StartGap::new(lines, interval);
        let mut retire = RetireMap::new(lines, spares);
        let logical = lines - spares; // addressable (non-spare) lines
        for _ in 0..rng.range_usize(1, 39) {
            // Interleave gap movement with retirements of random lines.
            for _ in 0..rng.range_u64(0, 29) {
                sg.on_write();
            }
            let victim = rng.range_u64(0, logical.max(1) - 1);
            let _ = retire.retire(victim); // None once spares run out — fine
            let mut seen = HashSet::new();
            for l in 0..logical {
                let resolved = retire.resolve(l);
                assert!(resolved < lines, "resolve escaped the line space");
                let slot = sg.map(resolved);
                assert!(slot < sg.slots());
                assert!(
                    seen.insert(slot),
                    "lines collided on physical slot {slot} after {} retirements",
                    retire.retired()
                );
            }
        }
    });
}

/// Retry-with-backoff always terminates within its configured bound:
/// the attempt count is capped, each attempt's backoff is capped, and
/// the summed wait never exceeds `total_backoff_bound`.
#[test]
fn retry_backoff_terminates_within_bound() {
    for_each_case!(64, |rng| {
        let policy = RetryPolicy {
            max_retries: rng.range_u64(0, 12) as u32,
            backoff: Picos::from_ns(rng.range_u64(0, 9_999)),
        };
        // Worst case: every attempt fails. The loop structure used by
        // the controller is `for attempt in 0..max_retries`, so it
        // terminates after exactly max_retries waits.
        let mut attempts = 0u32;
        let mut waited = Picos::ZERO;
        for attempt in 0..policy.max_retries {
            attempts += 1;
            waited += policy.backoff_for(attempt);
        }
        assert_eq!(attempts, policy.max_retries);
        assert!(
            waited <= policy.total_backoff_bound(),
            "waited {waited} > bound {}",
            policy.total_backoff_bound()
        );
        // The exponential ramp saturates: no attempt ever waits longer
        // than the 8-doubling cap, so the bound is finite even for
        // absurd retry budgets.
        for attempt in 0..64 {
            assert!(policy.backoff_for(attempt) <= policy.backoff_for(8));
        }
    });
}

/// Functional read-back through the full controller equals what was
/// written, for arbitrary (address, payload) pairs.
#[test]
fn controller_round_trips_arbitrary_payloads() {
    for_each_case!(32, |rng| {
        let addr = rng.range_u64(0, (1 << 16) - 1);
        let payload: Vec<u8> = (0..rng.range_usize(1, 255))
            .map(|_| rng.range_u64(1, 254) as u8)
            .collect();
        let seed = rng.range_u64(0, 999);
        let mut c = PramController::new(SubsystemConfig::small(SchedulerKind::Final, seed));
        let w = c.write_bytes(Picos::ZERO, addr, &payload);
        let (_, back) = c.read_bytes(w.end + Picos::from_ms(1), addr, payload.len() as u32);
        assert_eq!(back, payload);
    });
}

/// Time-series accumulation equals the sum of inserted values, and
/// dense rendering preserves bucket order.
#[test]
fn timeseries_total_is_exact() {
    for_each_case!(64, |rng| {
        let mut ts = TimeSeries::new(Picos::from_ns(1000));
        let mut sum = 0.0;
        for _ in 0..rng.range_usize(1, 199) {
            let at = rng.range_u64(0, 999_999);
            let v = rng.range_f64(0.0, 100.0);
            ts.add(Picos::from_ns(at), v);
            sum += v;
        }
        assert!((ts.total() - sum).abs() < 1e-6);
        let buckets = ts.buckets();
        assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0));
    });
}

/// Memory accesses through the controller never travel back in time:
/// completion is at or after issue, and issuing later never yields an
/// earlier completion for the same sequence.
#[test]
fn controller_time_is_monotonic() {
    for_each_case!(32, |rng| {
        let gap_ns = rng.range_u64(0, 99_999);
        let n = rng.range_usize(1, 23);
        let mut c = PramController::new(SubsystemConfig::small(SchedulerKind::Final, 1));
        let mut t = Picos::ZERO;
        for i in 0..n {
            use sim_core::MemoryBackend;
            let a = if i % 3 == 0 {
                c.write(t, (i as u64) * 64, 32)
            } else {
                c.read(t, (i as u64) * 64, 32)
            };
            assert!(a.end >= t, "completion before issue");
            t = a.end + Picos::from_ns(gap_ns);
        }
    });
}

mod kernel_properties {
    use util::for_each_case;
    use workloads::kernels::{linalg, medley, solvers, stencils};
    use workloads::recorder::NullRecorder;

    /// Cholesky reconstructs its SPD input for arbitrary sizes.
    #[test]
    fn cholesky_reconstruction() {
        for_each_case!(16, |rng| {
            let n = rng.range_usize(4, 19);
            let agents = rng.range_usize(1, 4);
            let run = linalg::chol(n, agents, &mut NullRecorder);
            let l = &run.final_values;
            // Rebuild the SPD input the kernel constructs internally.
            let orig = |i: usize, j: usize| {
                let base = 1.0 / (1.0 + (i as f64 - j as f64).abs());
                if i == j {
                    base + n as f64
                } else {
                    base
                }
            };
            for i in 0..n {
                for j in 0..n {
                    let mut acc = 0.0;
                    for k in 0..n {
                        acc += l[i * n + k] * l[j * n + k];
                    }
                    assert!(
                        (acc - orig(i, j)).abs() < 1e-8,
                        "L*L^T mismatch at ({i},{j})"
                    );
                }
            }
        });
    }

    /// Jacobi smoothing never escapes the initial value bounds and is
    /// independent of the agent partitioning.
    #[test]
    fn jacobi2d_bounds_and_agent_invariance() {
        for_each_case!(16, |rng| {
            let n = rng.range_usize(4, 23);
            let steps = rng.range_usize(1, 4);
            let agents = rng.range_usize(1, 6);
            let a = stencils::jaco2d(n, steps, agents, &mut NullRecorder);
            let b = stencils::jaco2d(n, steps, 1, &mut NullRecorder);
            assert_eq!(&a.final_values, &b.final_values);
            for &v in &a.final_values {
                assert!((0.0..=16.0).contains(&v));
            }
        });
    }

    /// Floyd-Warshall output always satisfies the triangle inequality
    /// and never exceeds the direct edge weights.
    #[test]
    fn floyd_is_a_metric_closure() {
        for_each_case!(16, |rng| {
            let n = rng.range_usize(3, 13);
            let agents = rng.range_usize(1, 4);
            let run = medley::floyd(n, agents, &mut NullRecorder);
            let d = &run.final_values;
            for i in 0..n {
                assert_eq!(d[i * n + i], 0.0);
                for j in 0..n {
                    for k in 0..n {
                        assert!(
                            d[i * n + j] <= d[i * n + k] + d[k * n + j] + 1e-9,
                            "({i},{k},{j})"
                        );
                    }
                }
            }
        });
    }

    /// Forward substitution really solves its system.
    #[test]
    #[allow(clippy::needless_range_loop)] // index math mirrors the matrix
    fn trisolv_solves() {
        for_each_case!(16, |rng| {
            let n = rng.range_usize(3, 31);
            let agents = rng.range_usize(1, 4);
            let run = solvers::trisolv(n, agents, &mut NullRecorder);
            let x = &run.final_values;
            for i in 0..n {
                let mut acc = 0.0;
                for j in 0..=i {
                    let lij = if i == j {
                        2.0
                    } else {
                        1.0 / (2.0 + (i - j) as f64)
                    };
                    acc += lij * x[j];
                }
                let b = (i % 9) as f64 + 1.0;
                assert!((acc - b).abs() < 1e-9, "row {i}");
            }
        });
    }

    /// Durbin solves its Toeplitz system for arbitrary sizes.
    #[test]
    fn durbin_solves() {
        for_each_case!(16, |rng| {
            let n = rng.range_usize(2, 23);
            let agents = rng.range_usize(1, 4);
            let run = solvers::durbin(n, agents, &mut NullRecorder);
            let y = &run.final_values;
            let r: Vec<f64> = (0..n).map(|i| 0.5f64.powi(i as i32 + 1)).collect();
            for i in 0..n {
                let mut acc = 0.0;
                for j in 0..n {
                    let t = if i == j { 1.0 } else { r[i.abs_diff(j) - 1] };
                    acc += t * y[j];
                }
                assert!((acc + r[i]).abs() < 1e-8, "row {i}");
            }
        });
    }
}
