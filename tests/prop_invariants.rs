//! Property-based tests of the core data structures and protocol
//! invariants, using proptest.

use pram::cell::{CellArray, WORD_BYTES};
use pram::geometry::{PramGeometry, RowId};
use pram_ctrl::addr::AddressMap;
use pram_ctrl::wear::StartGap;
use pram_ctrl::{PramController, SchedulerKind, SubsystemConfig};
use proptest::prelude::*;
use sim_core::stats::TimeSeries;
use sim_core::{Picos, Timeline};
use std::collections::HashSet;

proptest! {
    /// Row addressing round-trips through the pre-active/activate split
    /// for every partition/row/lower-bit width combination.
    #[test]
    fn row_split_round_trips(
        partition in 0u8..16,
        row in 0u32..(1 << 21),
        lower_bits in 4u32..10,
    ) {
        let r = RowId::new(partition, row);
        let back = RowId::from_parts(r.upper(lower_bits), r.lower(lower_bits), lower_bits);
        prop_assert_eq!(back, r);
    }

    /// The global striping function maps distinct addresses to distinct
    /// (target, offset) pairs and stays within bounds.
    #[test]
    fn address_map_is_injective(addrs in prop::collection::hash_set(0u64..(1 << 24), 1..64)) {
        let m = AddressMap::paper();
        let mut seen = HashSet::new();
        for a in addrs {
            let t = m.decompose(a);
            prop_assert!(t.channel < 2);
            prop_assert!(t.module < 16);
            prop_assert!(seen.insert((t.channel, t.module, t.module_addr)),
                "collision at address {}", a);
        }
    }

    /// Splitting a request covers exactly its byte range, in order, with
    /// no fragment crossing a word boundary.
    #[test]
    fn split_partitions_the_range(addr in 0u64..(1 << 20), len in 1u32..2048) {
        let m = AddressMap::paper();
        let frags = m.split(addr, len);
        let mut cur = addr;
        for f in &frags {
            prop_assert_eq!(f.global_addr, cur);
            prop_assert!(f.len >= 1 && f.len <= 32);
            let first_word = f.global_addr / 32;
            let last_word = (f.global_addr + f.len as u64 - 1) / 32;
            prop_assert_eq!(first_word, last_word, "fragment crosses a word");
            cur += f.len as u64;
        }
        prop_assert_eq!(cur, addr + len as u64);
    }

    /// The cell array stores exactly what was programmed, regardless of
    /// operation order, and pristine state tracks all-zero content.
    #[test]
    fn cell_array_is_a_faithful_store(
        ops in prop::collection::vec((0u8..16, 0u32..256, any::<u8>()), 1..100)
    ) {
        let mut cells = CellArray::new(PramGeometry::paper());
        let mut model: std::collections::HashMap<RowId, u8> = Default::default();
        for (p, r, b) in ops {
            let row = RowId::new(p, r);
            cells.program(row, &[b; WORD_BYTES]);
            model.insert(row, b);
        }
        for (row, b) in model {
            prop_assert_eq!(cells.read(row), [b; WORD_BYTES]);
            prop_assert_eq!(cells.is_pristine(row), b == 0);
        }
    }

    /// Timeline reservations never overlap and never start before
    /// requested.
    #[test]
    fn timeline_reservations_are_disjoint(
        reqs in prop::collection::vec((0u64..10_000, 1u64..500), 1..50)
    ) {
        let mut t = Timeline::new();
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for (earliest, dur) in reqs {
            let start = t.reserve(Picos::from_ns(earliest), Picos::from_ns(dur));
            prop_assert!(start >= Picos::from_ns(earliest));
            let s = start.as_ps();
            let e = s + dur * 1000;
            for &(os, oe) in &spans {
                prop_assert!(e <= os || s >= oe, "overlap: [{s},{e}) vs [{os},{oe})");
            }
            spans.push((s, e));
        }
    }

    /// Start-gap stays a bijection under arbitrary write streams.
    #[test]
    fn start_gap_remains_bijective(
        lines in 2u64..64,
        interval in 1u64..16,
        writes in 0u64..2_000,
    ) {
        let mut sg = StartGap::new(lines, interval);
        for _ in 0..writes {
            sg.on_write();
        }
        let mut seen = HashSet::new();
        for l in 0..lines {
            let p = sg.map(l);
            prop_assert!(p < sg.slots());
            prop_assert!(seen.insert(p), "two lines mapped to slot {}", p);
        }
    }

    /// Functional read-back through the full controller equals what was
    /// written, for arbitrary (address, payload) pairs.
    #[test]
    fn controller_round_trips_arbitrary_payloads(
        addr in 0u64..(1 << 16),
        payload in prop::collection::vec(1u8..255, 1..256),
        seed in 0u64..1000,
    ) {
        let mut c = PramController::new(SubsystemConfig::small(SchedulerKind::Final, seed));
        let w = c.write_bytes(Picos::ZERO, addr, &payload);
        let (_, back) = c.read_bytes(w.end + Picos::from_ms(1), addr, payload.len() as u32);
        prop_assert_eq!(back, payload);
    }

    /// Time-series accumulation equals the sum of inserted values, and
    /// dense rendering preserves bucket order.
    #[test]
    fn timeseries_total_is_exact(
        samples in prop::collection::vec((0u64..1_000_000, 0.0f64..100.0), 1..200)
    ) {
        let mut ts = TimeSeries::new(Picos::from_ns(1000));
        let mut sum = 0.0;
        for &(at, v) in &samples {
            ts.add(Picos::from_ns(at), v);
            sum += v;
        }
        prop_assert!((ts.total() - sum).abs() < 1e-6);
        let buckets = ts.buckets();
        prop_assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0));
    }

    /// Memory accesses through the controller never travel back in time:
    /// completion is at or after issue, and issuing later never yields an
    /// earlier completion for the same sequence.
    #[test]
    fn controller_time_is_monotonic(
        gap_ns in 0u64..100_000,
        n in 1usize..24,
    ) {
        let mut c = PramController::new(SubsystemConfig::small(SchedulerKind::Final, 1));
        let mut t = Picos::ZERO;
        for i in 0..n {
            use sim_core::MemoryBackend;
            let a = if i % 3 == 0 {
                c.write(t, (i as u64) * 64, 32)
            } else {
                c.read(t, (i as u64) * 64, 32)
            };
            prop_assert!(a.end >= t, "completion before issue");
            t = a.end + Picos::from_ns(gap_ns);
        }
    }
}

mod kernel_properties {
    use proptest::prelude::*;
    use workloads::kernels::{linalg, medley, solvers, stencils};
    use workloads::recorder::NullRecorder;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Cholesky reconstructs its SPD input for arbitrary sizes.
        #[test]
        fn cholesky_reconstruction(n in 4usize..20, agents in 1usize..5) {
            let run = linalg::chol(n, agents, &mut NullRecorder);
            let l = &run.final_values;
            // Rebuild the SPD input the kernel constructs internally.
            let orig = |i: usize, j: usize| {
                let base = 1.0 / (1.0 + (i as f64 - j as f64).abs());
                if i == j { base + n as f64 } else { base }
            };
            for i in 0..n {
                for j in 0..n {
                    let mut acc = 0.0;
                    for k in 0..n {
                        acc += l[i * n + k] * l[j * n + k];
                    }
                    prop_assert!((acc - orig(i, j)).abs() < 1e-8,
                        "L*L^T mismatch at ({},{})", i, j);
                }
            }
        }

        /// Jacobi smoothing never escapes the initial value bounds and is
        /// independent of the agent partitioning.
        #[test]
        fn jacobi2d_bounds_and_agent_invariance(
            n in 4usize..24, steps in 1usize..5, agents in 1usize..7
        ) {
            let a = stencils::jaco2d(n, steps, agents, &mut NullRecorder);
            let b = stencils::jaco2d(n, steps, 1, &mut NullRecorder);
            prop_assert_eq!(&a.final_values, &b.final_values);
            for &v in &a.final_values {
                prop_assert!((0.0..=16.0).contains(&v));
            }
        }

        /// Floyd-Warshall output always satisfies the triangle inequality
        /// and never exceeds the direct edge weights.
        #[test]
        fn floyd_is_a_metric_closure(n in 3usize..14, agents in 1usize..5) {
            let run = medley::floyd(n, agents, &mut NullRecorder);
            let d = &run.final_values;
            for i in 0..n {
                prop_assert_eq!(d[i * n + i], 0.0);
                for j in 0..n {
                    for k in 0..n {
                        prop_assert!(
                            d[i * n + j] <= d[i * n + k] + d[k * n + j] + 1e-9,
                            "({},{},{})", i, k, j
                        );
                    }
                }
            }
        }

        /// Forward substitution really solves its system.
        #[test]
        #[allow(clippy::needless_range_loop)] // index math mirrors the matrix
        fn trisolv_solves(n in 3usize..32, agents in 1usize..5) {
            let run = solvers::trisolv(n, agents, &mut NullRecorder);
            let x = &run.final_values;
            for i in 0..n {
                let mut acc = 0.0;
                for j in 0..=i {
                    let lij = if i == j { 2.0 } else { 1.0 / (2.0 + (i - j) as f64) };
                    acc += lij * x[j];
                }
                let b = (i % 9) as f64 + 1.0;
                prop_assert!((acc - b).abs() < 1e-9, "row {}", i);
            }
        }

        /// Durbin solves its Toeplitz system for arbitrary sizes.
        #[test]
        fn durbin_solves(n in 2usize..24, agents in 1usize..5) {
            let run = solvers::durbin(n, agents, &mut NullRecorder);
            let y = &run.final_values;
            let r: Vec<f64> = (0..n).map(|i| 0.5f64.powi(i as i32 + 1)).collect();
            for i in 0..n {
                let mut acc = 0.0;
                for j in 0..n {
                    let t = if i == j { 1.0 } else { r[i.abs_diff(j) - 1] };
                    acc += t * y[j];
                }
                prop_assert!((acc + r[i]).abs() < 1e-8, "row {}", i);
            }
        }
    }
}
