//! Quantitative regression tests against the paper's headline claims.
//!
//! These run the full 15-kernel suite across configurations and assert
//! the *shape* of the results: who wins and by roughly what factor.
//! Exact magnitudes differ from the paper (our substrate is a simulator,
//! not the authors' testbed); EXPERIMENTS.md records both sides.
//!
//! The suite sweep is the expensive part, so one `#[test]` does the run
//! and checks all claims.

use dramless::system::simulate_dramless_scheduler;
use dramless::{run_suite, SystemKind, SystemParams};
use pram_ctrl::SchedulerKind;
use workloads::{Scale, Workload};

#[test]
fn figure15_and_17_headline_ratios() {
    let suite = Workload::suite(Scale(1.0));
    let params = SystemParams::default();
    let mut kinds = SystemKind::EVALUATED.to_vec();
    kinds.push(SystemKind::Ideal);
    let r = run_suite(&kinds, &suite, &params);
    use SystemKind::*;

    // Abstract/§VI-A: DRAM-less ≈ +93% over Hetero (we accept 1.4×-3×).
    let dl_vs_h = r.mean_normalized_bandwidth(DramLess, Hetero);
    assert!((1.4..3.0).contains(&dl_vs_h), "DL vs Hetero = {dl_vs_h:.2}");

    // Abstract: +47% over the peer-to-peer DMA system (accept 1.2×-2.2×).
    let dl_vs_hd = r.mean_normalized_bandwidth(DramLess, Heterodirect);
    assert!(
        (1.2..2.2).contains(&dl_vs_hd),
        "DL vs Heterodirect = {dl_vs_hd:.2}"
    );

    // §VI-A: +25% over the firmware-managed variant (accept 1.1×-1.6×).
    let dl_vs_fw = r.mean_normalized_bandwidth(DramLess, DramLessFirmware);
    assert!(
        (1.1..1.6).contains(&dl_vs_fw),
        "DL vs firmware = {dl_vs_fw:.2}"
    );

    // §VI-A: ~64% better than PAGE-buffer's best (accept 1.3×-2.5×).
    let dl_vs_pb = r.mean_normalized_bandwidth(DramLess, PageBuffer);
    assert!(
        (1.3..2.5).contains(&dl_vs_pb),
        "DL vs PAGE-buffer = {dl_vs_pb:.2}"
    );

    // §VI-B: Heterodirect shortens Hetero's time (bandwidth up ~25%).
    let hd_vs_h = r.mean_normalized_bandwidth(Heterodirect, Hetero);
    assert!(
        (1.05..1.8).contains(&hd_vs_h),
        "HD vs Hetero = {hd_vs_h:.2}"
    );

    // §VI-A: PAGE-buffer ≈ +78% over Integrated-SLC (accept 1.3×-2.5×).
    let pb_vs_slc = r.mean_normalized_bandwidth(PageBuffer, IntegratedSlc);
    assert!(
        (1.3..2.5).contains(&pb_vs_slc),
        "PB vs SLC = {pb_vs_slc:.2}"
    );

    // Flash tiers order by cell speed.
    assert!(
        r.mean_normalized_bandwidth(IntegratedSlc, IntegratedMlc) > 1.0,
        "SLC must beat MLC"
    );
    assert!(
        r.mean_normalized_bandwidth(IntegratedMlc, IntegratedTlc) > 1.0,
        "MLC must beat TLC"
    );

    // Fig. 1: the ideal system dominates everything; heterogeneous
    // acceleration loses most of it (paper: -74%).
    let h_vs_ideal = r.mean_normalized_bandwidth(Hetero, Ideal);
    assert!(h_vs_ideal < 0.35, "Hetero vs Ideal = {h_vs_ideal:.2}");

    // Abstract: DRAM-less consumes a small fraction (paper 19%) of the
    // P2P system's energy (accept < 45%).
    let dl_e = r.mean_relative_energy(DramLess, Heterodirect);
    assert!(dl_e < 0.45, "DL energy vs Heterodirect = {dl_e:.2}");

    // Fig. 1: Hetero burns many times the ideal system's energy
    // (paper ~9×; accept > 4×).
    let h_e = r.mean_relative_energy(Hetero, Ideal);
    assert!(h_e > 4.0, "Hetero energy vs Ideal = {h_e:.1}");

    // Fig. 17 shape: DRAM-less is the most energy-frugal evaluated
    // design.
    for k in SystemKind::EVALUATED {
        if k == DramLess {
            continue;
        }
        let e = r.mean_relative_energy(k, DramLess);
        assert!(
            e > 1.0,
            "{k} should burn more energy than DRAM-less ({e:.2})"
        );
    }
}

#[test]
fn figure13_scheduler_ablation_shape() {
    let params = SystemParams::default();
    // Representative kernels: one per class (full sweep lives in the
    // bench harness).
    let read_heavy = Workload::suite(Scale(0.6))
        .into_iter()
        .find(|w| w.kernel.label() == "trisolv")
        .expect("trisolv in suite");
    let write_heavy = Workload::suite(Scale(0.6))
        .into_iter()
        .find(|w| w.kernel.label() == "adi")
        .expect("adi in suite");

    let bw = |s: SchedulerKind, built: &workloads::suite::BuiltWorkload| {
        simulate_dramless_scheduler(s, built, &params).bandwidth()
    };

    let rh = read_heavy.build(params.agents);
    let wh = write_heavy.build(params.agents);

    // Interleaving lifts read-heavy workloads…
    let inter_gain = bw(SchedulerKind::Interleaving, &rh) / bw(SchedulerKind::BareMetal, &rh);
    assert!(inter_gain > 1.3, "interleaving on trisolv: {inter_gain:.2}");
    // …but gives almost nothing on the overwrite-bound ones (§V-A:
    // "adi, floyd and jaco1D have almost zero benefit").
    let inter_write = bw(SchedulerKind::Interleaving, &wh) / bw(SchedulerKind::BareMetal, &wh);
    assert!(inter_write < 1.3, "interleaving on adi: {inter_write:.2}");

    // Selective erasing is the mirror image.
    let sel_write = bw(SchedulerKind::SelectiveErasing, &wh) / bw(SchedulerKind::BareMetal, &wh);
    assert!(sel_write > 1.3, "selective erasing on adi: {sel_write:.2}");

    // Final dominates bare-metal on both classes and never loses to its
    // components.
    for built in [&rh, &wh] {
        let base = bw(SchedulerKind::BareMetal, built);
        let fin = bw(SchedulerKind::Final, built);
        assert!(fin > base, "Final must beat Bare-metal");
        let inter = bw(SchedulerKind::Interleaving, built);
        let sel = bw(SchedulerKind::SelectiveErasing, built);
        assert!(fin >= inter.max(sel) * 0.95, "Final ~combines both gains");
    }
}

#[test]
fn figure7_firmware_degradation() {
    // Fig. 7: traditional firmware degrades the system by up to 80%
    // vs an oracle (no-overhead) PRAM controller on data-intensive
    // workloads. Our oracle is the hardware-automated controller.
    let params = SystemParams::default();
    let suite = Workload::suite(Scale(1.0));
    let kinds = [SystemKind::DramLess, SystemKind::DramLessFirmware];
    let r = run_suite(&kinds, &suite, &params);
    let mut worst: f64 = 1.0;
    for w in &suite {
        let fw = r
            .get(SystemKind::DramLessFirmware, w.kernel)
            .expect("fw outcome");
        let hw = r.get(SystemKind::DramLess, w.kernel).expect("hw outcome");
        let rel = fw.bandwidth() / hw.bandwidth();
        assert!(
            rel < 1.02,
            "{}: firmware should not win ({rel:.2})",
            w.kernel
        );
        worst = worst.min(rel);
    }
    // The worst data-intensive workload degrades substantially (paper:
    // up to 80%; we require at least 25%).
    assert!(worst < 0.75, "worst-case firmware retention {worst:.2}");
}
