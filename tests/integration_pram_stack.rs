//! Cross-crate integration tests of the PRAM stack: device ← controller
//! ← schedulers, including the paper's protocol-level claims.

use pram::cell::WORD_BYTES;
use pram::{BufferId, PramModule, PramTiming, RowId};
use pram_ctrl::{
    FirmwareController, FirmwareParams, PramController, SchedulerKind, SubsystemConfig,
};
use sim_core::{MemoryBackend, Picos};

fn controller(s: SchedulerKind) -> PramController {
    PramController::new(SubsystemConfig::paper(s, 99))
}

#[test]
fn data_survives_every_scheduler() {
    let payload: Vec<u8> = (0..4096u32).map(|i| (i % 255 + 1) as u8).collect();
    for s in SchedulerKind::ALL {
        let mut c = controller(s);
        let w = c.write_bytes(Picos::ZERO, 8192, &payload);
        let (_, back) = c.read_bytes(w.end + Picos::from_ms(1), 8192, 4096);
        assert_eq!(back, payload, "{s} corrupted data");
    }
}

#[test]
fn data_survives_overwrites_with_selective_erasing() {
    // The selective-erase fast path must never be visible functionally.
    let mut c = controller(SchedulerKind::Final);
    let a: Vec<u8> = vec![0x11; 2048];
    let b: Vec<u8> = vec![0x22; 2048];
    let w1 = c.write_bytes(Picos::ZERO, 0, &a);
    c.announce_overwrites(w1.end, &(0..2048u64).step_by(32).collect::<Vec<_>>());
    // Long idle window, then overwrite.
    let t = w1.end + Picos::from_ms(5);
    let w2 = c.write_bytes(t, 0, &b);
    let (_, back) = c.read_bytes(w2.end + Picos::from_ms(1), 0, 2048);
    assert_eq!(back, b);
    assert!(c.stats().preerase_hits > 0, "pre-erase should have fired");
}

#[test]
fn interleaving_latency_hiding_hits_paper_range() {
    // §I claims the interleaving technique hides memory access latency
    // behind transfer time by ~40%. Measure per-request latency on a
    // partition-striped stream.
    let mut lat = Vec::new();
    for s in [SchedulerKind::BareMetal, SchedulerKind::Interleaving] {
        let mut c = controller(s);
        let mut t = Picos::ZERO;
        let mut sum = Picos::ZERO;
        for i in 0..256u64 {
            let a = c.read(t, i * 512, 512);
            sum += a.end - t;
            t = a.end;
        }
        lat.push(sum / 256);
    }
    let hidden = 1.0 - lat[1].as_ns_f64() / lat[0].as_ns_f64();
    assert!(
        hidden > 0.30,
        "interleaving should hide >=30% of access latency, got {:.0}%",
        hidden * 100.0
    );
}

#[test]
fn selective_erasing_write_latency_reduction_matches_abstract() {
    // §I: selective erasing shortens PRAM write latency by ~44%
    // (18 µs overwrite → 10 µs SET-only).
    let t = PramTiming::table2();
    let reduction = 1.0 - t.t_program_set.as_ns_f64() / t.t_program_overwrite().as_ns_f64();
    assert!((0.40..0.50).contains(&reduction), "{reduction}");
}

#[test]
fn firmware_controller_serializes_under_parallel_load() {
    // Fig. 7: data-intensive request streams choke on firmware. Issue a
    // burst of concurrent requests and compare against the hardware path.
    let inner = controller(SchedulerKind::Final);
    let mut fw = FirmwareController::new(inner, FirmwareParams::default());
    let mut hw = controller(SchedulerKind::Final);
    let mut fw_end = Picos::ZERO;
    let mut hw_end = Picos::ZERO;
    for i in 0..64u64 {
        fw_end = fw_end.max(fw.read(Picos::ZERO, i * 512, 512).end);
        hw_end = hw_end.max(hw.read(Picos::ZERO, i * 512, 512).end);
    }
    assert!(
        fw_end.as_ps() as f64 > hw_end.as_ps() as f64 * 1.5,
        "firmware {fw_end} vs hardware {hw_end}"
    );
}

#[test]
fn phase_skipping_reduces_stream_latency() {
    // RAB/RDB awareness (§III-B) must show up as measured skips and as
    // cheaper repeat accesses.
    let mut c = controller(SchedulerKind::Final);
    let first = c.read(Picos::ZERO, 0, 512);
    // Same words again: data still in RDBs → activate skipped.
    let second = c.read(first.end, 0, 512);
    assert!(c.stats().activate_skips >= 16);
    assert!(second.end - first.end < first.end - Picos::ZERO);
}

#[test]
fn erase_blocks_partition_but_not_others() {
    let mut m = PramModule::new(PramTiming::table2(), 5);
    let e = m.erase_partition(Picos::ZERO, pram::PartitionId(0));
    assert_eq!(e.duration(), Picos::from_ms(60));
    // Partition 1 is untouched; its activate proceeds immediately.
    let lb = m.geometry().lower_row_bits;
    let row = RowId::new(1, 0);
    m.pre_active(Picos::from_us(1), BufferId::B1, row.upper(lb));
    let act = m.activate(Picos::from_us(1), BufferId::B1, row.lower(lb));
    assert!(act.start < Picos::from_us(2));
}

#[test]
fn program_buffer_write_path_round_trips_through_overlay_registers() {
    // Drive the §V-B register sequence by hand against the device and
    // confirm the controller-visible result matches.
    let mut m = PramModule::new(PramTiming::table2(), 1);
    let row = RowId::new(2, 99);
    let addr = m.geometry().encode(row);
    let word = [0xC3u8; WORD_BYTES];
    use pram::overlay::regs;
    let t1 = m.write_overlay(Picos::ZERO, regs::COMMAND_CODE, &[0xE9]);
    let t2 = m.write_overlay(t1.end, regs::DATA_ADDRESS, &addr.to_le_bytes());
    let t3 = m.write_overlay(t2.end, regs::MULTI_PURPOSE, &[32]);
    let t4 = m.write_overlay(t3.end, regs::PROGRAM_BUFFER, &word);
    let done = m.execute_program(t4.end);
    assert_eq!(m.peek(row), word);
    assert!(done.duration() >= Picos::from_us(10));
}

#[test]
fn capacity_and_geometry_match_table_2() {
    let c = controller(SchedulerKind::Final);
    // 2 channels × 16 packages × 16 partitions (Table II).
    assert_eq!(c.config().map.channels, 2);
    assert_eq!(c.config().map.modules_per_channel, 16);
    assert_eq!(c.config().timing.rab_count, 4);
    assert_eq!(c.capacity_bytes(), 32u64 << 30);
}

#[test]
fn deterministic_across_identical_runs() {
    let run = |seed: u64| {
        let mut c = PramController::new(SubsystemConfig::paper(SchedulerKind::Final, seed));
        let mut t = Picos::ZERO;
        for i in 0..64u64 {
            t = c.write(t, i * 512, 512).end;
            t = c.read(t, i * 512, 512).end;
        }
        t
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8), "different seeds should jitter strobes");
}

/// The Figure 12 timing diagram, step by step: two requests (req-0,
/// req-1) to different partitions of the same chip; while req-1's
/// pre-active/activate (tRP + tRCD) proceed, req-0's data bursts out —
/// the transfers become invisible behind the partition access time.
#[test]
fn figure12_interleaving_timing_diagram() {
    use pram::{BufferId, BurstLen, PramModule, PramTiming, RowId};
    let timing = PramTiming::table2();
    let mut m = PramModule::new(timing, 12);
    let lb = m.geometry().lower_row_bits;
    let req0 = RowId::new(0, 100);
    let req1 = RowId::new(1, 200);

    // (1) req-0's pre-active + activate were initiated just before req-1's.
    let pre0 = m.pre_active(Picos::ZERO, BufferId::B0, req0.upper(lb));
    let act0 = m.activate(pre0.end, BufferId::B0, req0.lower(lb));
    let pre1 = m.pre_active(pre0.end, BufferId::B1, req1.upper(lb));
    let act1 = m.activate(pre1.end, BufferId::B1, req1.lower(lb));

    // (2)+(4): req-1's tRCD proceeds on partition 1 while…
    // (3): …req-0's burst (RL + tDQSS + tBURST) transfers in tandem.
    let (burst0, _) = m.read_burst(act0.end, Picos::ZERO, BufferId::B0, 0, BurstLen::Bl16);
    // The burst overlaps req-1's array access rather than queueing
    // behind it.
    assert!(
        burst0.start < act1.end,
        "req-0's transfer must overlap req-1's activate window: \
         burst0 starts {} vs act1 ends {}",
        burst0.start,
        act1.end
    );

    // (5) once the bus frees, req-1's burst follows immediately.
    let (burst1, _) = m.read_burst(
        act1.end.max(burst0.end),
        burst0.end,
        BufferId::B1,
        0,
        BurstLen::Bl16,
    );
    assert!(burst1.end > burst0.end);

    // Net effect: two complete three-phase reads in much less than two
    // serial reads (the §V-A "hide the memory access latency behind the
    // data transfer time" claim at protocol granularity).
    let serial = timing.nominal_read() * 2;
    assert!(
        burst1.end.as_ps() as f64 <= serial.as_ps() as f64 * 0.80,
        "interleaved pair {} should be well under 2 serial reads {}",
        burst1.end,
        serial
    );
}

/// §III-B prefetch: the controller's 512-bytes-per-channel requests leave
/// data resident across all RDBs, so a re-read of the same region skips
/// pre-active AND activate on every word.
#[test]
fn rdb_prefetch_effect_on_reread() {
    let mut c = controller(SchedulerKind::Final);
    c.read(Picos::ZERO, 0, 512);
    let before = *c.stats();
    c.read(Picos::from_ms(1), 0, 512);
    let after = *c.stats();
    assert_eq!(
        after.activate_skips - before.activate_skips,
        16,
        "all 16 words should be served straight from the RDBs"
    );
}
