//! Round-trip tests of the in-tree JSON layer over the public config
//! and report types, plus determinism checks for the in-tree PRNG.
//!
//! These pin the serialization format the CI bench artifacts and
//! `dramless-sim --json` rely on: serialize → parse → compare must be
//! the identity for every type a report contains.

use dramless::report::Breakdown;
use dramless::{SystemKind, SystemParams};
use sim_core::Picos;
use util::json::{FromJson, Json, ToJson};
use workloads::{Kernel, Scale, Workload};

fn round_trip<T: ToJson + FromJson + PartialEq + std::fmt::Debug>(v: &T) {
    let compact = v.to_json_string();
    let pretty = v.to_json_pretty();
    let from_compact = T::from_json_str(&compact).expect("compact parses");
    let from_pretty = T::from_json_str(&pretty).expect("pretty parses");
    assert_eq!(&from_compact, v, "compact round trip");
    assert_eq!(&from_pretty, v, "pretty round trip");
}

#[test]
fn system_kind_round_trips_every_variant() {
    for k in SystemKind::EVALUATED {
        round_trip(&k);
    }
    // Unit enums serialize as their variant name, like serde.
    assert_eq!(SystemKind::DramLess.to_json(), Json::Str("DramLess".into()));
}

#[test]
fn system_params_round_trip() {
    round_trip(&SystemParams::default());
    let custom = SystemParams {
        agents: 3,
        seed: 987654321,
        capacity_pressure: 1.75,
        page_bytes: 2048,
        image_bytes_per_agent: 64,
        sample_bucket_us: 5,
    };
    round_trip(&custom);
}

#[test]
fn breakdown_round_trip_preserves_picosecond_exactness() {
    let b = Breakdown {
        offload: Picos::from_ns(123),
        staging_in: Picos::from_us(45),
        compute: Picos::from_ms(6),
        memory: Picos::from_ps(u64::MAX / 2),
        staging_out: Picos::ZERO,
    };
    round_trip(&b);
}

#[test]
fn run_outcome_and_suite_result_round_trip() {
    // A real (small) simulation exercises every nested report type:
    // ExecReport series, EnergyBook ledgers, Breakdown, kernel enum.
    let w = Workload::of(Kernel::Trisolv, Scale::small());
    let params = SystemParams {
        agents: 2,
        ..SystemParams::default()
    };
    let r = dramless::run_suite(&[SystemKind::DramLess], &[w], &params);
    let json = r.to_json();
    let back: dramless::SuiteResult = FromJson::from_json_str(&json).expect("suite parses");
    assert_eq!(back.outcomes.len(), r.outcomes.len());
    let (a, b) = (&r.outcomes[0], &back.outcomes[0]);
    assert_eq!(a.system, b.system);
    assert_eq!(a.kernel, b.kernel);
    assert_eq!(a.total_time, b.total_time);
    assert_eq!(a.data_bytes, b.data_bytes);
    assert_eq!(a.breakdown, b.breakdown);
}

#[test]
fn workload_types_round_trip() {
    for k in Kernel::ALL {
        round_trip(&k);
    }
    round_trip(&Scale::small());
}

#[test]
fn prng_is_deterministic_for_a_fixed_seed() {
    let mut a = util::rng::Rng64::seed(0xDEAD_BEEF);
    let mut b = util::rng::Rng64::seed(0xDEAD_BEEF);
    let xs: Vec<u64> = (0..1000).map(|_| a.next_u64()).collect();
    let ys: Vec<u64> = (0..1000).map(|_| b.next_u64()).collect();
    assert_eq!(xs, ys);
    // A different seed diverges immediately.
    let mut c = util::rng::Rng64::seed(0xDEAD_BEF0);
    assert_ne!(xs[0], c.next_u64());
}

#[test]
fn prng_forks_are_deterministic_and_independent() {
    let mut base = util::rng::Rng64::seed(7);
    let mut f1 = base.fork(1);
    let mut f2 = base.fork(2);
    let mut f1b = util::rng::Rng64::seed(7).fork(1);
    let a: Vec<u64> = (0..64).map(|_| f1.next_u64()).collect();
    let b: Vec<u64> = (0..64).map(|_| f1b.next_u64()).collect();
    assert_eq!(a, b, "same fork stream replays");
    let c: Vec<u64> = (0..64).map(|_| f2.next_u64()).collect();
    assert_ne!(a, c, "distinct streams differ");
}

#[test]
fn sim_rng_pinned_first_draws() {
    // Freeze the simulator-facing generator: changing the PRNG would
    // silently shift every seeded experiment, so pin its first outputs.
    let mut r = sim_core::SimRng::seed(42);
    let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
    let mut again = sim_core::SimRng::seed(42);
    let replay: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
    assert_eq!(first, replay);
    for w in first.windows(2) {
        assert_ne!(w[0], w[1]);
    }
}
