//! Fault-matrix integration: sweep one workload across escalating error
//! rates and assert *exact* monotonic degradation.
//!
//! This is stronger than a statistical claim because fault draws are
//! stateless: every (access, attempt, trial) hashes the same labels at
//! every rate, and an event fires iff its fixed uniform value falls
//! below the configured rate. Raising the rate therefore turns a
//! *superset* of the same trials into faults — injections and retries
//! are non-decreasing, recovered latency is non-decreasing, and
//! bandwidth is non-increasing, cell by cell rather than on average.

use dramless::{simulate_spec_built, FaultPlan, SystemKind, SystemParams, SystemSpec};
use workloads::{Kernel, Scale, Workload};

fn params() -> SystemParams {
    SystemParams {
        agents: 3,
        ..Default::default()
    }
}

fn plan_at(drift: f64) -> FaultPlan {
    let mut plan = FaultPlan {
        seed: 7,
        ..Default::default()
    };
    plan.pram.drift_rate = drift;
    plan
}

#[test]
fn escalating_drift_degrades_monotonically() {
    let w = Workload::of(Kernel::Gemver, Scale(0.25));
    let built = w.build(params().agents);

    let rates = [0.0, 1e-3, 5e-3, 2e-2, 0.1];
    let outcomes: Vec<_> = rates
        .iter()
        .map(|&r| {
            let spec = SystemSpec {
                faults: Some(plan_at(r)),
                ..SystemKind::DramLess.spec()
            };
            simulate_spec_built(&spec, &built, &params()).unwrap()
        })
        .collect();

    // The zero-rate cell is the clean baseline: armed, nothing fired.
    let base = outcomes[0].degraded.unwrap();
    assert_eq!(base.injected, 0);
    assert_eq!(base.retries, 0);

    // The top-rate cell visibly degrades.
    let worst = outcomes.last().unwrap().degraded.unwrap();
    assert!(worst.injected > 0, "peak rate injected nothing");

    for pair in outcomes.windows(2) {
        let (lo, hi) = (&pair[0], &pair[1]);
        let (dl, dh) = (lo.degraded.unwrap(), hi.degraded.unwrap());
        assert!(
            dh.injected >= dl.injected,
            "injections fell when the rate rose: {} -> {}",
            dl.injected,
            dh.injected
        );
        assert!(
            dh.retries >= dl.retries,
            "retries fell when the rate rose: {} -> {}",
            dl.retries,
            dh.retries
        );
        assert!(
            hi.total_time >= lo.total_time,
            "total time fell when the rate rose: {} -> {}",
            lo.total_time,
            hi.total_time
        );
        assert!(
            hi.bandwidth() <= lo.bandwidth(),
            "bandwidth rose when the rate rose: {:.1} -> {:.1} MB/s",
            lo.bandwidth() / 1e6,
            hi.bandwidth() / 1e6
        );
    }
}

#[test]
fn escalating_ssd_transients_slow_staged_reads_monotonically() {
    let w = Workload::of(Kernel::Gemver, Scale(0.25));
    let built = w.build(params().agents);

    let rates = [0.0, 1e-2, 5e-2, 0.25];
    let outcomes: Vec<_> = rates
        .iter()
        .map(|&r| {
            let mut plan = FaultPlan {
                seed: 11,
                ..Default::default()
            };
            plan.ssd.transient_read_rate = r;
            let spec = SystemSpec {
                faults: Some(plan),
                ..SystemKind::Hetero.spec()
            };
            simulate_spec_built(&spec, &built, &params()).unwrap()
        })
        .collect();

    assert!(outcomes.last().unwrap().degraded.unwrap().ssd_retries > 0);
    for pair in outcomes.windows(2) {
        let (dl, dh) = (pair[0].degraded.unwrap(), pair[1].degraded.unwrap());
        assert!(dh.ssd_transient_faults >= dl.ssd_transient_faults);
        assert!(dh.ssd_retries >= dl.ssd_retries);
        assert!(pair[1].total_time >= pair[0].total_time);
    }
}

#[test]
fn no_fault_escapes_as_a_wrong_result() {
    // The resilience contract: injected faults cost time (retries,
    // backoff, retirement copies), never correctness. Every cell in the
    // matrix must report exactly the work the clean run reports — same
    // instruction count, same data volume — while its ledger shows the
    // faults were absorbed, not ignored.
    let w = Workload::of(Kernel::Trisolv, Scale(0.25));
    let built = w.build(params().agents);
    let clean = simulate_spec_built(&SystemKind::DramLess.spec(), &built, &params()).unwrap();

    let spec = SystemSpec {
        faults: Some(FaultPlan::seeded(3)),
        ..SystemKind::DramLess.spec()
    };
    let chaotic = simulate_spec_built(&spec, &built, &params()).unwrap();
    let d = chaotic.degraded.unwrap();
    assert!(d.injected > 0, "chaos cell injected nothing");
    assert_eq!(chaotic.exec.instructions, clean.exec.instructions);
    assert_eq!(chaotic.data_bytes, clean.data_bytes);
    // Absorbed = every uncorrectable event was retried/retired, and the
    // run still completed the same work later than the clean run.
    assert!(chaotic.total_time >= clean.total_time);
}
