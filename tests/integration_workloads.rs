//! Integration tests for the workload suite: functional correctness of
//! every kernel plus trace/accelerator interoperation.

use accel::exec::{AccelConfig, Accelerator};
use sim_core::energy::EnergyBook;
use sim_core::mem::{Access, MemoryBackend};
use sim_core::Picos;
use workloads::{Kernel, Scale, Workload};

/// A fixed-latency memory for engine-level checks.
struct FlatMem(Picos);

impl MemoryBackend for FlatMem {
    fn read(&mut self, at: Picos, _a: u64, _l: u32) -> Access {
        Access {
            start: at,
            end: at + self.0,
        }
    }
    fn write(&mut self, at: Picos, _a: u64, _l: u32) -> Access {
        Access {
            start: at,
            end: at + self.0,
        }
    }
    fn energy(&self) -> EnergyBook {
        EnergyBook::new()
    }
    fn label(&self) -> &'static str {
        "flat"
    }
}

#[test]
fn every_kernel_is_deterministic_and_finite() {
    for w in Workload::suite(Scale::small()) {
        let a = w.reference();
        let b = w.reference();
        assert_eq!(a.checksum, b.checksum, "{}", w.kernel);
        assert!(a.final_values.iter().all(|v| v.is_finite()), "{}", w.kernel);
        assert!(a.footprint > 0 && a.bytes_in > 0 && a.bytes_out > 0);
    }
}

#[test]
fn instrumentation_never_changes_results() {
    for w in Workload::suite(Scale::small()) {
        let reference = w.reference();
        let built = w.build(5);
        assert_eq!(
            reference.checksum, built.run.checksum,
            "{}: traced run diverged from reference",
            w.kernel
        );
    }
}

#[test]
fn every_trace_replays_on_the_accelerator() {
    let accel = Accelerator::new(AccelConfig::default());
    for w in Workload::suite(Scale(0.3)) {
        let built = w.build(accel.agents());
        let mut mem = FlatMem(Picos::from_ns(150));
        let report = accel.run(&built.traces, &mut mem);
        assert_eq!(
            report.instructions, built.character.instructions,
            "{}",
            w.kernel
        );
        assert!(report.total_time > Picos::ZERO);
        assert!(report.l1.hits + report.l1.misses > 0);
    }
}

#[test]
fn slower_memory_never_speeds_a_kernel_up() {
    let accel = Accelerator::new(AccelConfig::default());
    for kernel in [Kernel::Gemver, Kernel::Seidel] {
        let built = Workload::of(kernel, Scale(0.3)).build(accel.agents());
        let mut fast = FlatMem(Picos::from_ns(100));
        let mut slow = FlatMem(Picos::from_us(10));
        let rf = accel.run(&built.traces, &mut fast);
        let rs = accel.run(&built.traces, &mut slow);
        assert!(rs.total_time > rf.total_time, "{kernel}");
        assert!(rs.total_ipc() < rf.total_ipc(), "{kernel}");
    }
}

#[test]
fn table3_characteristics_are_consistent() {
    for w in Workload::suite(Scale::small()) {
        let c = w.build(4).character;
        // Write ratio is consistent with raw counts.
        let expect = c.stores as f64 / (c.loads + c.stores) as f64;
        assert!((c.write_ratio - expect).abs() < 1e-12);
        // Staged volumes never exceed the working set.
        assert!(c.bytes_in <= c.footprint, "{}", w.kernel);
        assert!(c.bytes_out <= c.footprint, "{}", w.kernel);
    }
}

#[test]
fn read_intensive_kernels_have_low_write_ratios() {
    // The canonical Fig. 13 circles.
    let ratio = |k: Kernel| {
        Workload::of(k, Scale::small())
            .build(4)
            .character
            .write_ratio
    };
    for k in [Kernel::Trisolv, Kernel::Dynpro, Kernel::Gemver] {
        assert!(ratio(k) < 0.15, "{k} should be read-dominated");
    }
    for k in [Kernel::Jaco1d, Kernel::Lu, Kernel::Adi] {
        assert!(ratio(k) > 0.2, "{k} should be store-heavy");
    }
}

#[test]
fn agent_partitioning_covers_all_work() {
    // Splitting across more agents preserves total memory traffic.
    for agents in [1usize, 3, 7] {
        let built = Workload::of(Kernel::Jaco2d, Scale::small()).build(agents);
        let (l, s): (u64, u64) = built
            .traces
            .iter()
            .map(|t| {
                let p = t.memory_profile();
                (p.0, p.1)
            })
            .fold((0, 0), |acc, x| (acc.0 + x.0, acc.1 + x.1));
        let one = Workload::of(Kernel::Jaco2d, Scale::small()).build(1);
        let p1 = one.traces[0].memory_profile();
        assert_eq!((l, s), (p1.0, p1.1), "agents={agents}");
    }
}

#[test]
fn store_targets_feed_selective_erasing() {
    let built = Workload::of(Kernel::Floyd, Scale::small()).build(3);
    for t in &built.traces {
        let targets = t.store_targets(32);
        let (_, stores, _, _) = t.memory_profile();
        if stores > 0 {
            assert!(!targets.is_empty());
            assert!(targets.iter().all(|a| a % 32 == 0));
        }
    }
}
