//! Golden equivalence: the declarative spec layer reproduces every
//! Table I preset bit-for-bit, specs round-trip through JSON, and the
//! scheduler-ablation entry point shares the same runner.

use dramless::system::{simulate_built, simulate_spec_as};
use dramless::{
    simulate_dramless_scheduler, Buffer, SystemId, SystemKind, SystemParams, SystemSpec,
    TelemetrySpec,
};
use pram_ctrl::SchedulerKind;
use util::json::{FromJson, ToJson};
use workloads::{Kernel, Scale, Workload};

fn params() -> SystemParams {
    SystemParams::default()
}

fn all_kinds() -> Vec<SystemKind> {
    let mut all = SystemKind::EVALUATED.to_vec();
    all.push(SystemKind::Ideal);
    all
}

#[test]
fn all_presets_byte_identical_through_the_spec_runner() {
    // `simulate_built` routes through SystemKind::spec(); running the
    // same spec explicitly under the preset identity must serialize to
    // byte-identical RunOutcome JSON — i.e. the spec carries everything
    // the hand-wired builder used to know.
    let w = Workload::of(Kernel::Gemver, Scale(0.25));
    let built = w.build(params().agents);
    for kind in all_kinds() {
        let direct = simulate_built(kind, &built, &params());
        let via_spec = simulate_spec_as(SystemId::Preset(kind), &kind.spec(), &built, &params())
            .expect("preset composes");
        assert_eq!(
            direct.to_json_pretty(),
            via_spec.to_json_pretty(),
            "{kind}: spec runner diverged from preset runner"
        );
    }
}

#[test]
fn preset_specs_round_trip_through_json() {
    for kind in all_kinds() {
        let spec = kind.spec();
        let parsed = SystemSpec::from_json_str(&spec.to_json_pretty()).unwrap();
        assert_eq!(parsed, spec, "{kind}");
        // And the re-parsed spec still runs identically.
        let w = Workload::of(Kernel::Trisolv, Scale(0.1));
        let built = w.build(2);
        let p = SystemParams {
            agents: 2,
            ..Default::default()
        };
        let a = simulate_spec_as(SystemId::Preset(kind), &spec, &built, &p).unwrap();
        let b = simulate_spec_as(SystemId::Preset(kind), &parsed, &built, &p).unwrap();
        assert_eq!(a.to_json_pretty(), b.to_json_pretty(), "{kind}");
    }
}

#[test]
fn scheduler_ablation_shares_the_preset_runner() {
    // Fig. 13's Final point *is* the DRAM-less preset: one runner, not
    // two near-duplicates.
    let w = Workload::of(Kernel::Trisolv, Scale(0.25));
    let built = w.build(params().agents);
    let ablation = simulate_dramless_scheduler(SchedulerKind::Final, &built, &params());
    let preset = simulate_built(SystemKind::DramLess, &built, &params());
    assert_eq!(ablation.to_json_pretty(), preset.to_json_pretty());
}

#[test]
fn staging_follows_the_spec_datapath_regression() {
    // Regression for the phase-2/4 bug: initial staging used to be
    // host-mediated for *every* heterogeneous system; Heterodirect must
    // stage-in strictly faster than Hetero now that bulk staging
    // follows the spec's datapath.
    let w = Workload::of(Kernel::Gemver, Scale(0.8));
    let built = w.build(params().agents);
    let h = simulate_built(SystemKind::Hetero, &built, &params());
    let hd = simulate_built(SystemKind::Heterodirect, &built, &params());
    assert!(
        hd.breakdown.staging_in < h.breakdown.staging_in,
        "Heterodirect stage-in {} !< Hetero stage-in {}",
        hd.breakdown.staging_in,
        h.breakdown.staging_in
    );
    let hp = simulate_built(SystemKind::HeteroPram, &built, &params());
    let hdp = simulate_built(SystemKind::HeterodirectPram, &built, &params());
    assert!(hdp.breakdown.staging_in < hp.breakdown.staging_in);
}

#[test]
fn malformed_specs_degrade_gracefully() {
    // A spec the composition rules reject is a typed error end to end —
    // no unreachable!(), no panicking sweep worker.
    let bad = SystemSpec {
        buffer: Buffer::None,
        ..SystemKind::Hetero.spec()
    };
    let w = Workload::of(Kernel::Trisolv, Scale(0.1));
    let built = w.build(2);
    let p = SystemParams {
        agents: 2,
        ..Default::default()
    };
    let err = dramless::simulate_spec_built(&bad, &built, &p).unwrap_err();
    assert!(!err.message().is_empty());
    assert!(dramless::build_system(&bad, &p, 1 << 20).is_err());
    assert!(dramless::sweep_specs(&[bad], &[w], &p).is_err());
}

#[test]
fn telemetry_changes_nothing_but_the_metrics_key() {
    // Observation must not perturb the simulation: a telemetry-on run
    // differs from the telemetry-off run of the same cell *only* by the
    // appended `metrics` key. Checked on a load/store, a staged and a
    // page-interface design so every probe site is covered.
    let w = Workload::of(Kernel::Trisolv, Scale(0.25));
    let built = w.build(params().agents);
    for kind in [
        SystemKind::DramLess,
        SystemKind::Hetero,
        SystemKind::IntegratedMlc,
    ] {
        let off = simulate_spec_as(SystemId::Preset(kind), &kind.spec(), &built, &params())
            .expect("preset composes");
        let off_json = off.to_json_pretty();
        assert!(
            !off_json.contains("\"metrics\""),
            "{kind}: metrics key present with telemetry off"
        );
        assert!(
            !off_json.contains("\"degraded\""),
            "{kind}: degraded key present with faults off"
        );

        let spec_on = SystemSpec {
            telemetry: Some(TelemetrySpec::default()),
            ..kind.spec()
        };
        let mut on = simulate_spec_as(SystemId::Preset(kind), &spec_on, &built, &params())
            .expect("preset composes with telemetry");
        assert!(!on.metrics.is_empty(), "{kind}: telemetry on, no metrics");
        assert!(on.to_json_pretty().contains("\"metrics\""));
        on.metrics = util::telemetry::MetricSet::new();
        assert_eq!(
            on.to_json_pretty(),
            off_json,
            "{kind}: probes perturbed the simulation"
        );
    }
}

#[test]
fn attribution_changes_nothing_but_its_own_key() {
    // Latency attribution is pure observation: an attributed run must
    // differ from the plain run of the same cell only by the telemetry
    // it adds (`metrics` + `latency_attribution`). Checked on a
    // load/store, a staged and a page-interface design so every
    // accumulation site is covered.
    let w = Workload::of(Kernel::Trisolv, Scale(0.25));
    let built = w.build(params().agents);
    for kind in [
        SystemKind::DramLess,
        SystemKind::Hetero,
        SystemKind::IntegratedMlc,
    ] {
        // The spec key is opt-in: preset specs must not grow an
        // `attribution` key, and attribution-off reports must not grow
        // a `latency_attribution` key.
        assert!(
            !kind.spec().to_json_pretty().contains("\"attribution\""),
            "{kind}: preset spec grew an attribution key"
        );
        let off = simulate_spec_as(SystemId::Preset(kind), &kind.spec(), &built, &params())
            .expect("preset composes");
        let off_json = off.to_json_pretty();
        assert!(
            !off_json.contains("\"latency_attribution\""),
            "{kind}: latency_attribution key present with attribution off"
        );

        let spec_on = SystemSpec {
            telemetry: Some(TelemetrySpec {
                attribution: true,
                ..Default::default()
            }),
            ..kind.spec()
        };
        let mut on = simulate_spec_as(SystemId::Preset(kind), &spec_on, &built, &params())
            .expect("preset composes with attribution");
        let a = on.attr.as_ref().expect("attribution summary present");
        assert!(a.records > 0, "{kind}: no attributed requests");
        assert!(
            a.conserves(),
            "{kind}: attribution does not conserve ({} violations, {} of {} ps)",
            a.violations,
            a.attributed_ps,
            a.wall_ps
        );
        assert!(on.to_json_pretty().contains("\"latency_attribution\""));
        // Strip what attribution added; the rest must be byte-identical.
        on.attr = None;
        on.metrics = util::telemetry::MetricSet::new();
        assert_eq!(
            on.to_json_pretty(),
            off_json,
            "{kind}: attribution perturbed the simulation"
        );
    }
}

#[test]
fn fault_free_presets_serialize_without_fault_keys() {
    // Schema pin for the fault knob: every preset's spec JSON still has
    // no `faults` key, and a run of it produces a report with no
    // `degraded` key — files written before fault injection existed
    // stay byte-compatible in both directions.
    let w = Workload::of(Kernel::Trisolv, Scale(0.1));
    let built = w.build(2);
    let p = SystemParams {
        agents: 2,
        ..Default::default()
    };
    for kind in all_kinds() {
        let spec = kind.spec();
        assert!(
            !spec.to_json_pretty().contains("\"faults\""),
            "{kind}: preset spec grew a faults key"
        );
        let out = simulate_spec_as(SystemId::Preset(kind), &spec, &built, &p).unwrap();
        assert!(
            !out.to_json_pretty().contains("\"degraded\""),
            "{kind}: fault-free report grew a degraded key"
        );
    }
}

/// FNV-1a over a report's pretty-printed JSON.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn accurate_tier_reports_match_pre_refactor_goldens() {
    // Byte-identity pin for the hot-path refactors (packed trace
    // storage, batched scheduler, controller fast path): these digests
    // were captured from the pre-refactor tree on the same cell. Any
    // drift in report bytes — timing, energy, series, ordering — fails
    // here before it can silently shift figure data. Re-record only for
    // a deliberate model change.
    const GOLDEN: [(SystemKind, u64); 12] = [
        (SystemKind::Hetero, 0xec3bb477bc89bc0c),
        (SystemKind::Heterodirect, 0xd442957294037618),
        (SystemKind::HeteroPram, 0x45117523fd012e19),
        (SystemKind::HeterodirectPram, 0x18416fc6662749b8),
        (SystemKind::NorIntf, 0xd99df1f3508ae021),
        (SystemKind::IntegratedSlc, 0xf873b59bc7275c81),
        (SystemKind::IntegratedMlc, 0x5c4f5ef55238c5ec),
        (SystemKind::IntegratedTlc, 0xcccd87317dd618a1),
        (SystemKind::PageBuffer, 0x834ef34ed6e24b9c),
        (SystemKind::DramLessFirmware, 0x5ae45dc2b7cde42f),
        (SystemKind::DramLess, 0x134d359b359a2f01),
        (SystemKind::Ideal, 0x20981fcaa2867330),
    ];
    let w = Workload::of(Kernel::Gemver, Scale(0.25));
    let built = w.build(params().agents);
    for (kind, want) in GOLDEN {
        let out = simulate_built(kind, &built, &params());
        let got = fnv1a(out.to_json_pretty().as_bytes());
        assert_eq!(
            got, want,
            "{kind}: accurate-tier report bytes drifted (got 0x{got:016x})"
        );
    }
}

#[test]
fn suite_json_schema_is_unchanged_for_presets() {
    // The report key for a preset is still the bare SystemKind variant
    // string — downstream JSON consumers see no schema change.
    let w = Workload::of(Kernel::Trisolv, Scale(0.1));
    let p = SystemParams {
        agents: 2,
        ..Default::default()
    };
    let r = dramless::run_suite(&[SystemKind::DramLess], &[w], &p);
    let json = r.to_json();
    assert!(json.contains("\"system\": \"DramLess\""), "schema drifted");
    let back: dramless::SuiteResult = FromJson::from_json_str(&json).unwrap();
    assert_eq!(back.outcomes[0].system, SystemKind::DramLess);
}
