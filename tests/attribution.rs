//! Latency attribution: the conservation invariant (every request's
//! cause decomposition sums exactly to its end-to-end latency) across
//! the full preset x tier x fault matrix, the tail-forensics contract
//! (a worst exec-phase request replays in isolation through the
//! record/replay machinery), and report JSON round trips.

use dramless::replay::{record_run, replay};
use dramless::system::simulate_spec_as;
use dramless::{
    FaultPlan, FidelityTier, RunOutcome, SystemId, SystemKind, SystemParams, SystemSpec,
    TelemetrySpec,
};
use sim_core::probe::AttrScope;
use util::json::{FromJson, ToJson};
use workloads::{Kernel, Scale, Workload};

fn params() -> SystemParams {
    SystemParams {
        agents: 2,
        ..Default::default()
    }
}

fn all_kinds() -> Vec<SystemKind> {
    let mut all = SystemKind::EVALUATED.to_vec();
    all.push(SystemKind::Ideal);
    all
}

/// An attributed spec for `kind` at `tier`, optionally with seeded
/// faults armed.
fn attributed_spec(kind: SystemKind, tier: FidelityTier, faults: bool) -> SystemSpec {
    SystemSpec {
        telemetry: Some(TelemetrySpec {
            attribution: true,
            ..Default::default()
        }),
        tier,
        faults: faults.then(|| FaultPlan::seeded(7)),
        ..kind.spec()
    }
}

fn run_attributed(kind: SystemKind, tier: FidelityTier, faults: bool) -> RunOutcome {
    let w = Workload::of(Kernel::Trisolv, Scale(0.1));
    let built = w.build(params().agents);
    simulate_spec_as(
        SystemId::Preset(kind),
        &attributed_spec(kind, tier, faults),
        &built,
        &params(),
    )
    .expect("attributed preset composes")
}

#[test]
fn conservation_holds_for_every_preset_tier_and_fault_mode() {
    // The invariant the whole layer is built on: phases sum to
    // end-to-end latency for every request, in all 12 presets, under
    // both fidelity tiers, with fault injection off and on. The
    // monotone-cursor accumulation makes this true by construction;
    // this test makes it true by contract.
    for kind in all_kinds() {
        for tier in [FidelityTier::Accurate, FidelityTier::Analytic] {
            for faults in [false, true] {
                if faults && tier == FidelityTier::Analytic {
                    // The analytic tier rejects fault plans by contract.
                    continue;
                }
                let out = run_attributed(kind, tier, faults);
                let a = out.attr.as_ref().expect("attribution on yields a summary");
                assert!(
                    a.conserves(),
                    "{kind}/{tier:?}/faults={faults}: {} violation(s), \
                     {} ps attributed vs {} ps wall",
                    a.violations,
                    a.attributed_ps,
                    a.wall_ps
                );
                // Scope subtotals must account for the same ledger.
                let scope_wall: u64 = a.scopes.iter().map(|s| s.wall_ps).sum();
                assert_eq!(
                    scope_wall, a.wall_ps,
                    "{kind}/{tier:?}/faults={faults}: scope walls disagree"
                );
                let cause_total: u64 = a.total_causes().iter().sum();
                assert_eq!(
                    cause_total, a.attributed_ps,
                    "{kind}/{tier:?}/faults={faults}: cause totals disagree"
                );
            }
        }
    }
}

#[test]
fn pram_bearing_presets_attribute_requests() {
    // Conservation over zero records is vacuous; the designs with
    // instrumented datapaths must actually record. The accurate tier
    // covers exec-phase requests, the staged design covers the
    // SSD/staging path.
    for kind in [SystemKind::DramLess, SystemKind::Hetero] {
        let out = run_attributed(kind, FidelityTier::Accurate, false);
        let a = out.attr.as_ref().unwrap();
        assert!(a.records > 0, "{kind}: no attributed requests");
        assert!(
            !a.windows.buckets.is_empty(),
            "{kind}: no sim-time series buckets"
        );
        assert!(!a.top.is_empty(), "{kind}: no tail-forensics entries");
        // Worst-first ordering.
        for w in a.top.windows(2) {
            assert!(w[0].dur_ps >= w[1].dur_ps, "{kind}: top list not sorted");
        }
        // The window series is its own conservation ledger.
        let bucket_wall: u64 = a.windows.buckets.iter().map(|b| b.wall_ps).sum();
        assert_eq!(bucket_wall, a.wall_ps, "{kind}: window walls disagree");
        let bucket_count: u64 = a.windows.buckets.iter().map(|b| b.count).sum();
        assert_eq!(bucket_count, a.records, "{kind}: window counts disagree");
    }
}

#[test]
fn attribution_summary_round_trips_through_report_json() {
    let out = run_attributed(SystemKind::DramLess, FidelityTier::Accurate, true);
    assert!(out.attr.is_some());
    let text = out.to_json_pretty();
    let back = RunOutcome::from_json_str(&text).expect("report parses");
    assert_eq!(back.attr, out.attr, "attribution summary drifted in JSON");
    assert_eq!(back.to_json_pretty(), text, "report not byte-stable");
}

#[test]
fn worst_exec_request_replays_in_isolation() {
    // The tail-forensics contract: exec-phase attribution indices are
    // backend-request ordinals, so the worst request a chaos-run `top`
    // names can be isolated with `replay --window` on a recording of
    // the *same cell made without attribution* — no re-running the
    // attributed sweep.
    let kind = SystemKind::DramLess;
    let w = Workload::of(Kernel::Trisolv, Scale(0.1));
    let p = params();

    let out = run_attributed(kind, FidelityTier::Accurate, true);
    let a = out.attr.as_ref().unwrap();
    let worst = a
        .top
        .iter()
        .find(|t| t.scope == AttrScope::Exec)
        .expect("an exec-phase request among the worst");

    let mut plain = kind.spec();
    plain.faults = Some(FaultPlan::seeded(7));
    let rec =
        record_run(&[(SystemId::Preset(kind), plain)], &[w], &p, 40).expect("recording composes");
    assert!(
        worst.index < rec.cells[0].fingerprint.requests,
        "worst index {} outside the recorded stream of {}",
        worst.index,
        rec.cells[0].fingerprint.requests
    );
    let report = replay(&rec, 0, worst.index..worst.index + 1).expect("window replays cleanly");
    assert!(report.replayed_to > worst.index);
}

#[test]
fn worst_fleet_request_isolates_on_the_owning_accelerator() {
    // The fleet extension of the tail-forensics contract: the worst
    // entry a fleet report's `top` table names carries its owning
    // tenant, the tenant model reconstructs that request's kernel from
    // the seed alone, and a recording of that kernel on the fleet's own
    // system composition replays a single-request window in isolation —
    // no re-running the fleet.
    use dramless::{run_fleet_on, ArrivalProcess, BalancerKind, FleetSpec};
    use util::pool::Pool;

    let spec = FleetSpec {
        name: Some("forensics".into()),
        accelerators: 1,
        slots_per_accel: 1,
        balancer: BalancerKind::RoundRobin,
        tenants: 16,
        arrivals: ArrivalProcess::Poisson {
            rate_per_s: 2_000.0,
        },
        requests: 800,
        erase_every_kb: 64,
        ..FleetSpec::example()
    };
    let report = run_fleet_on(&Pool::new(2), &spec).expect("cell serves");
    let worst = report.top_request().expect("a non-empty top table");
    assert_eq!(worst.source, "fleet.request");
    let tenant = worst.tenant.expect("fleet top entries carry their tenant");

    // Reconstruct the offending request's kernel from the seed alone.
    let model = spec.tenant_model().expect("mix validates");
    assert_eq!(model.tenant_of(worst.index), tenant);
    let kernel = model.kernel_of(worst.index, tenant);
    assert!(spec.kernels.contains(&kernel));

    // Record that kernel on the fleet's own system composition and
    // isolate a window through the replay machinery.
    let w = Workload::of(kernel, Scale(spec.scale));
    let rec = record_run(
        &[(SystemId::Custom("fleet-cell".into()), spec.system.clone())],
        &[w],
        &spec.params(),
        40,
    )
    .expect("recording composes");
    let backend = rec.cells[0].fingerprint.requests;
    assert!(backend > 0);
    let probe = worst.index.min(backend - 1);
    let isolated = replay(&rec, 0, probe..probe + 1).expect("window replays cleanly");
    assert!(isolated.replayed_to > probe);
}
