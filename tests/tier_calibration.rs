//! The fidelity-tier contract: on every Table I preset (plus the
//! ideal), the analytic tier's total time and energy stay within the
//! **committed** drift bounds of the accurate tier.
//!
//! The bounds live in `crates/dramless/calibration.json`, written by
//! `cargo run --release -p bench --bin calibrate` as
//! `1.5 × max observed drift + 2%` over its calibration + held-out
//! workloads. This test re-measures drift on workloads drawn from both
//! of those sets — one the fit saw, one it never did — so a calibration
//! table that silently went stale against the accurate engine fails
//! loudly here, per preset, with the measured and committed numbers in
//! the message.

use dramless::analytic::{axes_key, CalibrationTable};
use dramless::{simulate_spec_built, FidelityTier, SystemKind, SystemParams, SystemSpec};
use workloads::{Kernel, Scale, Workload};

/// Every calibrated preset.
fn presets() -> Vec<SystemKind> {
    let mut v = SystemKind::EVALUATED.to_vec();
    v.push(SystemKind::Ideal);
    v
}

/// One workload the fitter trained on, one it only ever validated on.
fn probes() -> Vec<Workload> {
    vec![
        Workload::of(Kernel::Gemver, Scale(0.25)),
        Workload::of(Kernel::Lu, Scale(0.3)),
    ]
}

#[test]
fn analytic_tier_stays_within_committed_bounds_on_every_preset() {
    let params = SystemParams::default();
    let table = CalibrationTable::embedded();
    let mut failures = Vec::new();

    for kind in presets() {
        let spec = kind.spec();
        let entry = table
            .lookup(&axes_key(&spec))
            .unwrap_or_else(|| panic!("no calibration entry for {kind:?}"));
        for w in probes() {
            let built = w.build_cached(params.agents);
            let acc = simulate_spec_built(&spec, &built, &params).unwrap();
            let ana_spec = SystemSpec {
                tier: FidelityTier::Analytic,
                ..spec.clone()
            };
            let ana = simulate_spec_built(&ana_spec, &built, &params).unwrap();

            let dt = (ana.total_time.as_ns_f64() / acc.total_time.as_ns_f64() - 1.0).abs();
            let de = (ana.total_energy().as_j() / acc.total_energy().as_j() - 1.0).abs();
            if dt > entry.time_bound {
                failures.push(format!(
                    "{kind:?} × {:?}(n={}): time drift {:.1}% exceeds committed \
                     bound {:.1}%",
                    w.kernel,
                    w.n,
                    dt * 100.0,
                    entry.time_bound * 100.0
                ));
            }
            if de > entry.energy_bound {
                failures.push(format!(
                    "{kind:?} × {:?}(n={}): energy drift {:.1}% exceeds committed \
                     bound {:.1}%",
                    w.kernel,
                    w.n,
                    de * 100.0,
                    entry.energy_bound * 100.0
                ));
            }
        }
    }

    assert!(
        failures.is_empty(),
        "analytic tier drifted out of its committed bounds (re-run the \
         calibrate bin and commit the table if the accurate engine changed \
         deliberately):\n{}",
        failures.join("\n")
    );
}

#[test]
fn every_preset_has_a_schema_current_calibration_entry() {
    let table = CalibrationTable::embedded();
    for kind in presets() {
        let entry = table
            .lookup(&axes_key(&kind.spec()))
            .unwrap_or_else(|| panic!("no calibration entry for {kind:?}"));
        assert!(
            entry.time_bound > 0.0 && entry.time_bound < 2.0,
            "{kind:?}: implausible time bound {}",
            entry.time_bound
        );
        assert!(
            entry.energy_bound > 0.0 && entry.energy_bound < 3.0,
            "{kind:?}: implausible energy bound {}",
            entry.energy_bound
        );
    }
}
