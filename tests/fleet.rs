//! Fleet serving: the determinism contract (a seeded 1k-tenant,
//! 100k-request cell is byte-identical at 1 vs 4 threads), the QoS
//! conservation ledger (per-class and per-tenant histograms merge
//! exactly to the fleet aggregate), and report JSON round trips.

use dramless::{run_fleet_on, ArrivalProcess, BalancerKind, FleetReport, FleetSpec, QosClass};
use util::json::{FromJson, ToJson};
use util::pool::Pool;
use util::telemetry::LatencyHistogram;
use workloads::Kernel;

/// The acceptance-scale cell: ≥1k tenants, ≥100k requests, bursty
/// arrivals, admission control, and the PRAM erase wall armed.
fn acceptance_spec() -> FleetSpec {
    FleetSpec {
        name: Some("acceptance".into()),
        accelerators: 8,
        slots_per_accel: 2,
        balancer: BalancerKind::QosAware,
        tenants: 1024,
        // Bursts overrun the fleet's service capacity (~16 slots at
        // ~100us/request ≈ 160k req/s) so admission control engages;
        // the calm-period rate keeps the cell stable on average.
        arrivals: ArrivalProcess::Bursty {
            base_per_s: 10_000.0,
            burst_per_s: 400_000.0,
            mean_burst_ms: 20.0,
            mean_calm_ms: 80.0,
        },
        kernels: vec![Kernel::Trisolv, Kernel::Durbin, Kernel::Jaco1d],
        seed: 2026,
        requests: 100_000,
        admit_ms: 20.0,
        erase_every_kb: 512,
        ..FleetSpec::example()
    }
}

#[test]
fn acceptance_cell_is_byte_identical_at_one_vs_four_threads() {
    // The headline contract: the serving loop is serial and the
    // parallel phases (kernel pricing, chunked aggregation) merge in
    // submission order, so thread count must never leak into the
    // report — down to the last byte of JSON.
    let spec = acceptance_spec();
    let serial = run_fleet_on(&Pool::new(1), &spec).expect("1-thread run serves");
    let threaded = run_fleet_on(&Pool::new(4), &spec).expect("4-thread run serves");
    assert_eq!(
        serial.to_json(),
        threaded.to_json(),
        "thread count leaked into the fleet report"
    );

    // The cell really is at acceptance scale and exercised every class.
    assert_eq!(threaded.tenants, 1024);
    assert!(threaded.offered >= 100_000, "offered {}", threaded.offered);
    threaded.check_conservation().expect("conservation ledger");
    for class in QosClass::ALL {
        let c = threaded.class(class);
        assert!(c.completed > 0, "{} served nothing", class.key());
        let (p50, p99, p999) = (
            c.latency.quantile_ns(0.50),
            c.latency.quantile_ns(0.99),
            c.latency.quantile_ns(0.999),
        );
        assert!(p50 > 0, "{}: empty p50", class.key());
        assert!(
            p50 <= p99 && p99 <= p999,
            "{}: quantiles unordered",
            class.key()
        );
    }
    // Admission control engaged under burst pressure, and only against
    // the classes it is allowed to touch.
    assert!(threaded.rejected > 0, "qos-aware never rejected");
    assert_eq!(
        threaded.rejected,
        threaded.class(QosClass::BestEffort).rejected
    );
    assert_eq!(
        threaded.degraded,
        threaded.class(QosClass::Throughput).degraded
    );
}

#[test]
fn per_tenant_histograms_merge_exactly_to_the_aggregate() {
    // check_conservation() asserts this too; here the merge is done by
    // hand so a ledger bug and a merge bug cannot mask each other.
    let spec = FleetSpec {
        tenants: 128,
        requests: 5_000,
        ..acceptance_spec()
    };
    let report = run_fleet_on(&Pool::new(2), &spec).expect("cell serves");
    let mut from_tenants = LatencyHistogram::default();
    let mut offered = 0;
    for t in &report.per_tenant {
        from_tenants.merge(&t.latency);
        offered += t.offered;
    }
    assert_eq!(from_tenants, report.aggregate);
    assert_eq!(offered, report.offered);

    let mut from_classes = LatencyHistogram::default();
    for (_, c) in &report.classes {
        from_classes.merge(&c.latency);
    }
    assert_eq!(from_classes, report.aggregate);
    assert_eq!(report.aggregate.count(), report.completed);
}

#[test]
fn every_balancer_serves_the_same_offered_traffic() {
    // The arrival process and tenant draws are balancer-independent:
    // switching the dispatch policy re-routes requests but never
    // re-shapes the offered load.
    let base = FleetSpec {
        tenants: 64,
        requests: 3_000,
        ..acceptance_spec()
    };
    let pool = Pool::new(2);
    let reports: Vec<FleetReport> = BalancerKind::ALL
        .into_iter()
        .map(|balancer| {
            run_fleet_on(
                &pool,
                &FleetSpec {
                    balancer,
                    ..base.clone()
                },
            )
            .expect("cell serves")
        })
        .collect();
    for r in &reports {
        assert_eq!(r.offered, reports[0].offered);
        r.check_conservation().expect("conservation ledger");
        // Offered per tenant is a pure function of the seed.
        let offered: Vec<u64> = r.per_tenant.iter().map(|t| t.offered).collect();
        let first: Vec<u64> = reports[0].per_tenant.iter().map(|t| t.offered).collect();
        assert_eq!(offered, first);
    }
    // Only the admission-controlled balancer may reject or degrade.
    for r in &reports[..2] {
        assert_eq!(r.rejected, 0, "{} rejected", r.balancer.label());
        assert_eq!(r.degraded, 0, "{} degraded", r.balancer.label());
    }
}

#[test]
fn fleet_reports_round_trip_through_json() {
    let spec = FleetSpec {
        tenants: 32,
        requests: 1_000,
        ..acceptance_spec()
    };
    let report = run_fleet_on(&Pool::new(2), &spec).expect("cell serves");
    let parsed = FleetReport::from_json_str(&report.to_json_pretty()).expect("report parses");
    assert_eq!(
        parsed.to_json_pretty(),
        report.to_json_pretty(),
        "round trip is byte-stable"
    );
    parsed
        .check_conservation()
        .expect("parsed ledger still balances");
}
