//! End-to-end integration tests over the full system compositions: every
//! Table I configuration executing real kernels, checking the paper's
//! qualitative orderings.

use dramless::{simulate, system::simulate_built, SystemKind, SystemParams};
use sim_core::Picos;
use workloads::{Kernel, Scale, Workload};

fn params() -> SystemParams {
    SystemParams::default()
}

#[test]
fn all_twelve_systems_complete_every_kernel_class() {
    // One representative per access class keeps this fast.
    for kernel in [Kernel::Gemver, Kernel::Doitg, Kernel::Jaco1d] {
        let w = Workload::of(kernel, Scale::small());
        let built = w.build(params().agents);
        let mut kinds = SystemKind::EVALUATED.to_vec();
        kinds.push(SystemKind::Ideal);
        for kind in kinds {
            let out = simulate_built(kind, &built, &params());
            assert!(out.total_time > Picos::ZERO, "{kind}/{kernel}");
            assert!(out.total_energy().as_j() > 0.0, "{kind}/{kernel}");
            assert_eq!(
                out.exec.instructions, built.character.instructions,
                "{kind}/{kernel} lost instructions"
            );
            // Every agent with assigned work retired it.
            for (stats, trace) in out.exec.pe_stats.iter().zip(&built.traces) {
                if !trace.is_empty() {
                    assert!(stats.instructions > 0, "{kind}/{kernel}: idle agent");
                }
            }
        }
    }
}

#[test]
fn headline_orderings_hold_on_a_read_intensive_kernel() {
    let w = Workload::of(Kernel::Gemver, Scale(0.8));
    let built = w.build(params().agents);
    let get = |k| simulate_built(k, &built, &params());
    let dl = get(SystemKind::DramLess);
    let fw = get(SystemKind::DramLessFirmware);
    let het = get(SystemKind::Hetero);
    let hd = get(SystemKind::Heterodirect);
    let ideal = get(SystemKind::Ideal);

    // Fig. 15 orderings.
    assert!(
        dl.bandwidth() > fw.bandwidth(),
        "HW automation beats firmware"
    );
    assert!(dl.bandwidth() > het.bandwidth(), "DRAM-less beats Hetero");
    assert!(
        hd.bandwidth() > het.bandwidth(),
        "P2P DMA beats host staging"
    );
    // Fig. 1: everything degrades vs the ideal in-memory system.
    assert!(ideal.bandwidth() > dl.bandwidth());
    // Abstract: DRAM-less consumes a small fraction of the P2P system's
    // energy.
    assert!(
        dl.total_energy().as_j() < hd.total_energy().as_j() * 0.6,
        "DL {} vs HD {}",
        dl.total_energy(),
        hd.total_energy()
    );
}

#[test]
fn flash_tier_ordering_is_monotone() {
    let w = Workload::of(Kernel::Trisolv, Scale::small());
    let built = w.build(params().agents);
    let slc = simulate_built(SystemKind::IntegratedSlc, &built, &params());
    let mlc = simulate_built(SystemKind::IntegratedMlc, &built, &params());
    let tlc = simulate_built(SystemKind::IntegratedTlc, &built, &params());
    assert!(slc.bandwidth() >= mlc.bandwidth());
    assert!(mlc.bandwidth() >= tlc.bandwidth());
    assert!(slc.total_energy() <= tlc.total_energy());
}

#[test]
fn page_buffer_beats_integrated_flash() {
    // §VI-A: "PAGE-buffer offers the performance 78% better than
    // Integrated-SLC" — at minimum it must win.
    let w = Workload::of(Kernel::Jaco2d, Scale::small());
    let built = w.build(params().agents);
    let pb = simulate_built(SystemKind::PageBuffer, &built, &params());
    let slc = simulate_built(SystemKind::IntegratedSlc, &built, &params());
    assert!(pb.bandwidth() > slc.bandwidth());
}

#[test]
fn byte_granularity_wins_on_sparse_reads() {
    // §VI-D: page-granule configs stall fetching whole pages; the
    // byte-granular DRAM-less keeps its PEs fed. Needs a footprint that
    // actually pressures the internal buffer (tiny kernels fit entirely
    // in DRAM and hide the page-fetch stalls).
    let w = Workload::of(Kernel::Gemver, Scale(0.8));
    let built = w.build(params().agents);
    let dl = simulate_built(SystemKind::DramLess, &built, &params());
    let tlc = simulate_built(SystemKind::IntegratedTlc, &built, &params());
    assert!(
        dl.total_ipc() > tlc.total_ipc() * 2.0,
        "DL IPC {:.3} vs TLC IPC {:.3}",
        dl.total_ipc(),
        tlc.total_ipc()
    );
}

#[test]
fn energy_decomposition_attributes_the_right_components() {
    let w = Workload::of(Kernel::Gemver, Scale::small());
    let built = w.build(params().agents);

    let het = simulate_built(SystemKind::Hetero, &built, &params());
    assert!(
        het.energy.energy_of_prefix("host.").as_j() > 0.0,
        "host stack energy"
    );
    assert!(
        het.energy.energy_of_prefix("flash.").as_j() > 0.0,
        "SSD flash energy"
    );
    assert!(
        het.energy.energy_of_prefix("pcie.").as_j() > 0.0,
        "PCIe energy"
    );
    assert!(het.energy.energy_of("dram.refresh").as_j() > 0.0);

    let dl = simulate_built(SystemKind::DramLess, &built, &params());
    assert!(
        dl.energy.energy_of_prefix("pram.").as_j() > 0.0,
        "PRAM array energy"
    );
    assert_eq!(
        dl.energy.energy_of_prefix("host.stack").as_j(),
        0.0,
        "no host stack"
    );
    assert_eq!(
        dl.energy.energy_of("dram.refresh").as_j(),
        0.0,
        "no internal DRAM"
    );

    let fw = simulate_built(SystemKind::DramLessFirmware, &built, &params());
    assert!(
        fw.energy.energy_of("fw.cpu").as_j() > 0.0,
        "firmware CPU energy"
    );
}

#[test]
fn breakdown_phases_sum_to_total_within_parallel_slack() {
    let w = Workload::of(Kernel::Fdtdap, Scale::small());
    for kind in [
        SystemKind::Hetero,
        SystemKind::DramLess,
        SystemKind::IntegratedSlc,
    ] {
        let out = simulate(kind, &w, &params());
        // offload + staging phases are wall-clock; compute+memory are
        // per-agent averages, so the sum is a lower bound on total time.
        assert!(
            out.breakdown.total() <= out.total_time + Picos::from_us(1),
            "{kind}: breakdown {} vs total {}",
            out.breakdown.total(),
            out.total_time
        );
    }
}

#[test]
fn ipc_series_covers_the_execution_and_sums_to_instructions() {
    let w = Workload::of(Kernel::Doitg, Scale::small());
    let out = simulate(SystemKind::DramLess, &w, &params());
    assert_eq!(out.exec.ipc_series.total() as u64, out.exec.instructions);
    assert!(out.exec.ipc_series.horizon() <= out.exec.total_time + Picos::from_us(100));
}

#[test]
fn suite_sweep_and_json_serialization() {
    let workloads = [
        Workload::of(Kernel::Trisolv, Scale(0.3)),
        Workload::of(Kernel::Lu, Scale(0.3)),
    ];
    let kinds = [SystemKind::Hetero, SystemKind::DramLess];
    let r = dramless::run_suite(&kinds, &workloads, &params());
    assert_eq!(r.outcomes.len(), 4);
    assert!(r.get(SystemKind::DramLess, Kernel::Lu).is_some());
    let norm = r
        .normalized_bandwidth(SystemKind::DramLess, SystemKind::Hetero, Kernel::Lu)
        .expect("both outcomes present");
    assert!(norm > 0.0);
    // A missing pair degrades to None instead of panicking.
    assert!(r
        .normalized_bandwidth(SystemKind::Ideal, SystemKind::Hetero, Kernel::Lu)
        .is_none());
    let json = r.to_json();
    assert!(json.contains("DramLess"));
    // Round-trips through the in-tree JSON layer.
    let back: dramless::SuiteResult = util::json::FromJson::from_json_str(&json).expect("parses");
    assert_eq!(back.outcomes.len(), 4);
}

#[test]
fn selective_erase_announcement_flows_from_exec_to_controller() {
    // The server announces store targets at kernel launch; the Final
    // scheduler must register pre-erase hits on an overwrite-heavy
    // kernel like floyd.
    let w = Workload::of(Kernel::Floyd, Scale::small());
    let built = w.build(params().agents);
    let dl = simulate_built(SystemKind::DramLess, &built, &params());
    // Selective erasing can only help; it must not slow the run.
    let mut p = params();
    p.seed = 123;
    let dl2 = simulate_built(SystemKind::DramLess, &built, &p);
    let ratio = dl.total_time.as_ns_f64() / dl2.total_time.as_ns_f64();
    assert!(
        (0.8..1.25).contains(&ratio),
        "seed sensitivity too high: {ratio}"
    );
}
