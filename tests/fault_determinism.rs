//! The fault subsystem's core guarantees, end to end:
//!
//! 1. **Thread-count invariance** — a seeded `FaultPlan` produces
//!    byte-identical sweep reports at 1 and 4 workers, because every
//!    fault decision is a stateless hash of stable labels, never a
//!    draw from a shared generator.
//! 2. **Zero-cost when off** — a spec without a fault plan serializes
//!    and runs exactly as before the subsystem existed: no `degraded`
//!    key, identical bytes.
//! 3. **Armed-but-inert is visible** — attaching `FaultPlan::default()`
//!    (all rates zero) changes *only* the report's `degraded` section,
//!    which reads all zeros: timing and results are untouched.

use dramless::sweep::sweep_specs_on;
use dramless::{
    simulate_spec_built, FaultPlan, SystemKind, SystemParams, SystemSpec, TelemetrySpec,
};
use util::json::ToJson;
use util::pool::Pool;
use workloads::{Kernel, Scale, Workload};

fn params() -> SystemParams {
    SystemParams {
        agents: 3,
        ..Default::default()
    }
}

fn chaos_grid() -> (Vec<SystemSpec>, Vec<Workload>) {
    // One load/store PRAM design and one staged-SSD design, so both the
    // PRAM error model and the SSD transient path are exercised.
    let plan = FaultPlan::seeded(7);
    let specs = [SystemKind::DramLess, SystemKind::Hetero]
        .iter()
        .map(|k| SystemSpec {
            faults: Some(plan.clone()),
            ..k.spec()
        })
        .collect();
    let workloads = [Kernel::Trisolv, Kernel::Gemver]
        .iter()
        .map(|&k| Workload::of(k, Scale(0.25)))
        .collect();
    (specs, workloads)
}

#[test]
fn seeded_faults_are_byte_identical_across_thread_counts() {
    let (specs, workloads) = chaos_grid();
    let p = params();

    let (serial, _) = sweep_specs_on(&Pool::new(1), &specs, &workloads, &p).unwrap();
    let (parallel, _) = sweep_specs_on(&Pool::new(4), &specs, &workloads, &p).unwrap();

    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "fault-injected sweep output diverged across thread counts"
    );

    // Every cell carries a degraded section, and faults actually fired
    // somewhere: the plan was not a no-op.
    assert!(serial.outcomes.iter().all(|o| o.degraded.is_some()));
    let agg = serial.aggregate_degraded().expect("plans were armed");
    assert!(agg.injected > 0, "seeded plan injected nothing");
    assert!(agg.ecc_corrected > 0, "ECC never corrected anything");
    assert!(serial.to_json().contains("\"degraded\""));
}

#[test]
fn fault_metrics_surface_through_telemetry() {
    // With telemetry *and* faults armed, the metric registry carries the
    // resilience counters and they agree with the degraded ledger.
    let (mut specs, workloads) = chaos_grid();
    for s in &mut specs {
        s.telemetry = Some(TelemetrySpec::default());
    }
    let p = params();
    let (r, _) = sweep_specs_on(&Pool::new(2), &specs, &workloads, &p).unwrap();

    let dramless_cells: Vec<_> = r
        .outcomes
        .iter()
        .filter(|o| o.system.name() == "DRAM-less")
        .collect();
    assert!(!dramless_cells.is_empty());
    for o in dramless_cells {
        let d = o.degraded.expect("armed cell has a ledger");
        assert_eq!(o.metrics.counter("fault.injected"), Some(d.injected));
        assert_eq!(
            o.metrics.counter("pram.ecc_corrected"),
            Some(d.ecc_corrected)
        );
        assert_eq!(o.metrics.counter("pram.retries"), Some(d.retries));
        assert_eq!(
            o.metrics.counter("pram.retired_lines"),
            Some(d.retired_lines)
        );
    }
}

#[test]
fn no_plan_means_no_degraded_key_and_identical_bytes() {
    let w = Workload::of(Kernel::Trisolv, Scale(0.25));
    let built = w.build(params().agents);
    for kind in [
        SystemKind::DramLess,
        SystemKind::Hetero,
        SystemKind::IntegratedMlc,
    ] {
        let out = simulate_spec_built(&kind.spec(), &built, &params()).unwrap();
        assert!(out.degraded.is_none(), "{kind}: ledger without a plan");
        assert!(
            !out.to_json_pretty().contains("\"degraded\""),
            "{kind}: degraded key with faults off"
        );
    }
}

#[test]
fn inert_plan_changes_only_the_degraded_section() {
    // `FaultPlan::default()` has every rate at zero: arming it must not
    // move a single picosecond — the report differs from the plan-free
    // run only by an all-zero `degraded` object.
    let w = Workload::of(Kernel::Gemver, Scale(0.25));
    let built = w.build(params().agents);
    for kind in [SystemKind::DramLess, SystemKind::Hetero] {
        let off = simulate_spec_built(&kind.spec(), &built, &params()).unwrap();
        let spec_inert = SystemSpec {
            faults: Some(FaultPlan::default()),
            ..kind.spec()
        };
        let mut inert = simulate_spec_built(&spec_inert, &built, &params()).unwrap();
        let d = inert.degraded.take().expect("armed cell has a ledger");
        assert!(d.is_zero(), "{kind}: inert plan injected something: {d:?}");
        assert_eq!(
            inert.to_json_pretty(),
            off.to_json_pretty(),
            "{kind}: an inert plan perturbed the simulation"
        );
    }
}

#[test]
fn same_seed_same_report_and_different_seeds_diverge() {
    let w = Workload::of(Kernel::Gemver, Scale(0.25));
    let built = w.build(params().agents);
    let spec_at = |seed| SystemSpec {
        faults: Some(FaultPlan::seeded(seed)),
        ..SystemKind::DramLess.spec()
    };
    let a = simulate_spec_built(&spec_at(7), &built, &params()).unwrap();
    let b = simulate_spec_built(&spec_at(7), &built, &params()).unwrap();
    assert_eq!(a.to_json_pretty(), b.to_json_pretty(), "same seed diverged");

    let c = simulate_spec_built(&spec_at(8), &built, &params()).unwrap();
    assert_ne!(
        a.degraded, c.degraded,
        "different seeds drew identical fault patterns"
    );
}
