//! End-to-end telemetry: a traced run emits a well-formed Chrome
//! trace-event JSON with per-partition / per-RDB / per-PE lanes, the
//! scheduler counters behind the Fig. 13 ablation surface in
//! [`RunOutcome`] metrics, and suite JSON with metrics round-trips
//! byte-stably.

use dramless::{
    simulate_spec_built, simulate_spec_traced, Buffer, Control, Datapath, Medium, SuiteResult,
    SystemKind, SystemParams, SystemSpec, TelemetrySpec,
};
use pram_ctrl::SchedulerKind;
use util::json::{FromJson, Json};
use util::telemetry::chrome_trace;
use workloads::{Kernel, Scale, Workload};

/// A staged-PRAM point Table I never built (PALP-style): PRAM behind
/// P2P DMA with an Interleaving scheduler. It exercises partitions,
/// RDBs, PEs, the DRAM page cache, the staging path *and* the PRAM
/// datapath in one run — the richest trace any single spec produces.
fn palp_style() -> SystemSpec {
    SystemSpec {
        name: Some("palp-style".into()),
        medium: Medium::Pram3x,
        datapath: Datapath::P2pDma,
        buffer: Buffer::DramPageCache { frames: None },
        control: Control::HardwareAutomated {
            scheduler: SchedulerKind::Interleaving,
        },
        telemetry: None,
        faults: None,
        tier: Default::default(),
    }
}

fn params() -> SystemParams {
    SystemParams {
        agents: 3,
        ..Default::default()
    }
}

fn get<'j>(fields: &'j [(String, Json)], key: &str) -> Option<&'j Json> {
    fields.iter().find(|(n, _)| n == key).map(|(_, v)| v)
}

#[test]
fn traced_run_emits_a_well_formed_chrome_trace() {
    let w = Workload::of(Kernel::Gemver, Scale(0.25));
    let built = w.build(params().agents);
    let (out, events) = simulate_spec_traced(&palp_style(), &built, &params()).unwrap();
    assert!(!events.is_empty(), "traced run recorded no events");
    assert!(!out.metrics.is_empty(), "traced run recorded no metrics");

    let trace = chrome_trace(&events);
    let Json::Arr(items) = &trace else {
        panic!("chrome trace must be a JSON array of event records");
    };
    let mut last_ts = f64::NEG_INFINITY;
    let mut lanes: Vec<String> = Vec::new();
    let mut spans = 0u64;
    let mut instants = 0u64;
    for item in items {
        let Json::Obj(fields) = item else {
            panic!("every trace record is an object");
        };
        let Some(Json::Str(ph)) = get(fields, "ph") else {
            panic!("every record carries a ph");
        };
        assert!(get(fields, "pid").is_some(), "record lacks pid");
        assert!(get(fields, "tid").is_some(), "record lacks tid");
        match ph.as_str() {
            "M" => {
                if let Some(Json::Obj(args)) = get(fields, "args") {
                    if let Some(Json::Str(n)) = get(args, "name") {
                        lanes.push(n.clone());
                    }
                }
            }
            "X" | "i" => {
                let Some(Json::F64(ts)) = get(fields, "ts") else {
                    panic!("event lacks a numeric ts");
                };
                assert!(
                    *ts >= last_ts,
                    "timestamps must be nondecreasing: {ts} after {last_ts}"
                );
                assert!(*ts >= 0.0);
                last_ts = *ts;
                if ph == "X" {
                    let Some(Json::F64(dur)) = get(fields, "dur") else {
                        panic!("complete event lacks dur");
                    };
                    assert!(*dur > 0.0);
                    spans += 1;
                } else {
                    instants += 1;
                }
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert!(spans > 0, "no complete events in the trace");
    assert!(instants > 0, "no instants (RAB/RDB hits) in the trace");
    // One named lane per component instance: PRAM partitions, RDBs and
    // PEs each get their own thread track.
    for prefix in ["partition/", "rdb/", "pe/"] {
        assert!(
            lanes.iter().any(|n| n.starts_with(prefix)),
            "no {prefix} lane among {lanes:?}"
        );
    }
    // Several PEs ran, each on its own lane.
    assert!(lanes.iter().filter(|n| n.starts_with("pe/")).count() >= 2);
}

#[test]
fn scheduler_counters_surface_in_outcome_metrics() {
    // The DRAM-less preset runs the Final scheduler = interleaving +
    // selective erasing: both counter families must be live in the
    // outcome's metric set.
    let spec = SystemSpec {
        telemetry: Some(TelemetrySpec::default()),
        ..SystemKind::DramLess.spec()
    };
    let w = Workload::of(Kernel::Gemver, Scale(0.5));
    let built = w.build(params().agents);
    let out = simulate_spec_built(&spec, &built, &params()).unwrap();
    let m = &out.metrics;

    assert!(m.counter("pram.reads").unwrap_or(0) > 0);
    assert!(m.counter("pram.writes").unwrap_or(0) > 0);
    // Interleaving: address phases of one word overlapped another
    // word's data burst at least once on a multi-agent run.
    assert!(
        m.counter("pram.overlap_wins").unwrap_or(0) > 0,
        "interleave-overlap counter dead: {m:?}"
    );
    // Selective erasing: the pre-RESET pipeline observed writes
    // (hits when a speculative pre-RESET paid off, misses otherwise).
    let preerase = m.counter("pram.preerase_hits").unwrap_or(0)
        + m.counter("pram.preerase_misses").unwrap_or(0);
    assert!(preerase > 0, "selective-erase counters dead: {m:?}");
    // PE-side metrics ride along, including the latency histogram.
    assert!(m.counter("pe.instructions").unwrap_or(0) > 0);
    assert!(m.gauge_value("pe.ipc").unwrap_or(0.0) > 0.0);
    assert!(m.histogram("pram.read").is_some_and(|h| h.count() > 0));
    // Trace bookkeeping is attached even though the trace was dropped.
    assert!(m.counter("trace.events_recorded").unwrap_or(0) > 0);
}

#[test]
fn suite_json_with_metrics_round_trips_byte_stable() {
    let specs = [
        SystemSpec {
            telemetry: Some(TelemetrySpec::default()),
            ..SystemKind::DramLess.spec()
        },
        SystemSpec {
            telemetry: Some(TelemetrySpec::default()),
            ..SystemKind::Hetero.spec()
        },
    ];
    let w = Workload::of(Kernel::Trisolv, Scale(0.1));
    let p = SystemParams {
        agents: 2,
        ..Default::default()
    };
    let suite = dramless::sweep_specs(&specs, &[w], &p).unwrap();
    let text = suite.to_json();
    assert!(text.contains("\"metrics\""));

    // parse → serialize reproduces the exact bytes: per-outcome metric
    // sets are key-sorted, and the suite-level aggregate is re-derived.
    let back: SuiteResult = FromJson::from_json_str(&text).unwrap();
    assert_eq!(back.to_json(), text, "suite JSON not byte-stable");

    // The aggregate is the merge of the outcome sets.
    let agg = suite.aggregate_metrics();
    let per_cell: u64 = suite
        .outcomes
        .iter()
        .map(|o| o.metrics.counter("pe.instructions").unwrap_or(0))
        .sum();
    assert_eq!(agg.counter("pe.instructions"), Some(per_cell));
}

#[test]
fn aggregate_metrics_quantiles_match_concatenated_samples() {
    // Quantile stability under aggregation: because the histograms are
    // log2-bucketed, merging per-cell histograms produces exactly the
    // bucket counts of the concatenated sample stream — so suite-level
    // quantiles equal single-histogram quantiles, not merely approximate
    // them. Uses one tiny real run as an outcome template and swaps in
    // synthetic per-cell metric sets with known samples.
    use util::telemetry::{LatencyHistogram, MetricSet};
    let w = Workload::of(Kernel::Trisolv, Scale(0.1));
    let p = SystemParams {
        agents: 2,
        ..Default::default()
    };
    let built = w.build(p.agents);
    let template = simulate_spec_built(&SystemKind::DramLess.spec(), &built, &p).unwrap();

    // Three cells with samples spread across buckets, including ties
    // within a bucket and one far-tail outlier.
    let cells: [&[u64]; 3] = [
        &[700_000, 800_000, 900_000, 1_000_000, 40_000_000],
        &[1_200_000, 1_300_000, 1_400_000, 90_000_000],
        &[500_000, 600_000, 2_000_000_000],
    ];
    let mut concatenated = LatencyHistogram::new();
    let mut outcomes = Vec::new();
    for samples in cells {
        let mut m = MetricSet::new();
        for &ps in samples {
            m.record_latency_ps("guard.lat", ps);
            concatenated.record_ps(ps);
        }
        let mut o = template.clone();
        o.metrics = m;
        outcomes.push(o);
    }
    let suite = SuiteResult { outcomes };
    let agg = suite.aggregate_metrics();
    let merged = agg.histogram("guard.lat").expect("histogram aggregated");
    assert_eq!(merged.count(), concatenated.count());
    assert_eq!(merged.nonzero_buckets(), concatenated.nonzero_buckets());
    for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
        assert_eq!(
            merged.quantile_ns(q),
            concatenated.quantile_ns(q),
            "aggregated q={q} diverged from the concatenated-sample quantile"
        );
    }
}
