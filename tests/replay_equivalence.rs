//! Record/replay equivalence: recording must not perturb a run, and a
//! checkpoint-resume must be byte-identical to the straight run — for
//! every Table I preset, both fidelity tiers, faults on and off.
//!
//! The divergence direction is pinned too: tampering with a recorded
//! checkpoint must fail the replay loudly instead of letting it run
//! through to a silently different answer.

use dramless::replay::{self, RECORDING_VERSION};
use dramless::system::simulate_spec_as;
use dramless::{
    sweep, FaultPlan, FidelityTier, ReplayError, SystemId, SystemKind, SystemParams, SystemSpec,
};
use util::json::ToJson;
use workloads::{Kernel, Scale, Workload};

fn params() -> SystemParams {
    SystemParams::default()
}

fn small() -> Workload {
    Workload::of(Kernel::Gemver, Scale(0.25))
}

fn all_presets() -> Vec<SystemKind> {
    let mut all = SystemKind::EVALUATED.to_vec();
    all.push(SystemKind::Ideal);
    all
}

/// Records one cell and proves the recorded outcome is byte-identical
/// to the straight runner's, then replays it end to end (resume from
/// the request-zero checkpoint, cross-check every recorded checkpoint,
/// final stream digest and report fingerprint).
fn record_and_verify(spec: &SystemSpec, id: SystemId, every: u64) -> replay::CellRecording {
    let p = params();
    let w = small();
    let rec = replay::record_cell(id.clone(), spec, &w, &p, every)
        .unwrap_or_else(|e| panic!("{id}: record failed: {e}"));
    let built = w.build_cached(p.agents);
    let mut straight_spec = spec.clone();
    straight_spec.telemetry = None;
    let straight = simulate_spec_as(id.clone(), &straight_spec, &built, &p)
        .unwrap_or_else(|e| panic!("{id}: straight run failed: {e}"));
    assert_eq!(
        rec.outcome.to_json_string(),
        straight.to_json_string(),
        "{id}: recording perturbed the run"
    );
    let rep = replay::verify_cell(&rec, &p).unwrap_or_else(|e| panic!("{id}: replay failed: {e}"));
    assert!(rep.completed, "{id}: replay did not complete");
    rec
}

#[test]
fn every_preset_records_and_replays_byte_identically() {
    for kind in all_presets() {
        let rec = record_and_verify(&kind.spec(), SystemId::Preset(kind), 50);
        if rec.fingerprint.requests > 0 {
            assert!(
                !rec.checkpoints.is_empty(),
                "{kind}: accurate cells must carry the request-zero checkpoint"
            );
        }
    }
}

#[test]
fn recorded_suite_matches_the_sweep_cell_for_cell() {
    // The same grid through the recorder and through the production
    // sweep engine: outcomes and aggregate metrics must agree byte for
    // byte (record_run reports in the sweep's workload-major order).
    let p = params();
    let w = small();
    let systems: Vec<(SystemId, SystemSpec)> = all_presets()
        .into_iter()
        .map(|k| (SystemId::Preset(k), k.spec()))
        .collect();
    let rec = replay::record_run(&systems, &[w], &p, 500).unwrap();
    let (swept, _) = sweep::sweep_systems_with_stats(&systems, &[w], &p).unwrap();
    assert_eq!(rec.cells.len(), swept.outcomes.len());
    for (cell, out) in rec.cells.iter().zip(&swept.outcomes) {
        assert_eq!(
            cell.outcome.to_json_string(),
            out.to_json_string(),
            "{}: recorded cell differs from the swept cell",
            out.system.name()
        );
    }
    let recorded_suite = dramless::SuiteResult {
        outcomes: rec.cells.iter().map(|c| c.outcome.clone()).collect(),
    };
    assert_eq!(
        recorded_suite.aggregate_metrics().to_json_string(),
        swept.aggregate_metrics().to_json_string(),
        "aggregate metrics diverged"
    );
}

#[test]
fn faulted_runs_record_and_resume_mid_cell_byte_identically() {
    // The acceptance case: resuming mid-cell with fault injection armed
    // must land on the exact bytes of the straight faulted run. Fault
    // draws are stateless hashes over per-line counters that live in
    // the controller images, so they replay for free.
    let mut spec = SystemKind::DramLess.spec();
    spec.faults = Some(FaultPlan::seeded(7));
    let rec = record_and_verify(&spec, SystemId::Preset(SystemKind::DramLess), 40);
    assert!(
        rec.outcome.degraded.is_some(),
        "fault ledger missing from the recorded outcome"
    );
    assert!(
        rec.checkpoints.len() >= 3,
        "want mid-run checkpoints, got {}",
        rec.checkpoints.len()
    );
    // Resume from every mid-run checkpoint in turn; each resumed run
    // must complete and re-verify the final report fingerprint (FNV
    // over the full report JSON — byte identity).
    let p = params();
    for c in &rec.checkpoints[1..] {
        let rep = replay::replay_window(&rec, &p, c.requests..u64::MAX)
            .unwrap_or_else(|e| panic!("resume at {}: {e}", c.requests));
        assert_eq!(rep.resumed_at, c.requests);
        assert!(rep.completed, "resume at {} did not complete", c.requests);
    }
}

#[test]
fn window_replay_reproduces_recorded_fingerprints_and_rejects_tampering() {
    let mut spec = SystemKind::DramLess.spec();
    spec.faults = Some(FaultPlan::seeded(11));
    let p = params();
    let w = small();
    let rec =
        replay::record_cell(SystemId::Preset(SystemKind::DramLess), &spec, &w, &p, 40).unwrap();
    assert!(rec.checkpoints.len() >= 3);
    // A bounded window crosses and re-verifies the checkpoints inside it.
    let a = rec.checkpoints[1].requests;
    let b = rec.checkpoints[2].requests;
    let rep = replay::replay_window(&rec, &p, a..(b + 1)).unwrap();
    assert_eq!(rep.resumed_at, a);
    assert!(rep.verified_checkpoints >= 1);
    // Tampered stream digest: caught immediately at restore.
    let mut bad = rec.clone();
    bad.checkpoints[1].stream ^= 0xdead_beef;
    assert!(matches!(
        replay::replay_window(&bad, &p, a..u64::MAX),
        Err(ReplayError::Divergence { .. })
    ));
    // Tampered backend image (stale state under a valid envelope):
    // caught at the next crossed fingerprint, never run through.
    let mut bad = rec.clone();
    bad.checkpoints[1].backend = bad.checkpoints[0].backend.clone();
    let err = replay::replay_window(&bad, &p, a..u64::MAX).unwrap_err();
    assert!(
        matches!(
            err,
            ReplayError::Divergence { .. } | ReplayError::ReportMismatch { .. }
        ),
        "tampering slipped through: {err}"
    );
}

#[test]
fn recordings_round_trip_through_json_files() {
    let rec = replay::record_run(
        &[(
            SystemId::Preset(SystemKind::DramLess),
            SystemKind::DramLess.spec(),
        )],
        &[small()],
        &params(),
        60,
    )
    .unwrap();
    assert_eq!(rec.version, RECORDING_VERSION);
    let text = rec.to_json_string();
    let back = <replay::Recording as util::json::FromJson>::from_json_str(&text).unwrap();
    assert_eq!(back.to_json_string(), text, "recording JSON is not stable");
    let reports = replay::verify(&back).unwrap();
    assert!(reports.iter().all(|r| r.completed));
}

#[test]
fn prop_checkpoint_restore_resume_equals_straight_run() {
    // The full knob matrix on the real controller — both fidelity
    // tiers, faults on and off — with a seeded-random checkpoint
    // cadence and resume point per case.
    let p = params();
    let w = small();
    util::for_each_case!(4, |rng| {
        for tier in [FidelityTier::Accurate, FidelityTier::Analytic] {
            for faulted in [false, true] {
                if faulted && tier == FidelityTier::Analytic {
                    // The analytic tier rejects fault plans by design.
                    continue;
                }
                let mut spec = SystemKind::DramLess.spec();
                spec.tier = tier;
                if faulted {
                    spec.faults = Some(FaultPlan::seeded(rng.range_u64(1, 1 << 20)));
                }
                let every = rng.range_u64(20, 120);
                let id = SystemId::Preset(SystemKind::DramLess);
                let rec = replay::record_cell(id.clone(), &spec, &w, &p, every).unwrap();
                let built = w.build_cached(p.agents);
                let straight = simulate_spec_as(id, &spec, &built, &p).unwrap();
                assert_eq!(
                    rec.fingerprint.report,
                    replay::report_fingerprint(&straight),
                    "tier {tier:?} faulted {faulted}: recording perturbed the run"
                );
                match tier {
                    FidelityTier::Accurate => {
                        // Resume from a random checkpoint and run to the
                        // end: the replay layer itself asserts stream and
                        // report byte-identity, diverging loudly otherwise.
                        let i = rng.range_u64(0, rec.checkpoints.len() as u64 - 1) as usize;
                        let start = rec.checkpoints[i].requests.max(1);
                        let rep = replay::replay_window(&rec, &p, start..u64::MAX).unwrap();
                        assert!(rep.completed);
                    }
                    FidelityTier::Analytic => {
                        let rep = replay::verify_cell(&rec, &p).unwrap();
                        assert!(rep.completed);
                    }
                }
            }
        }
    });
}
