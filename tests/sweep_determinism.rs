//! The sweep engine's core guarantee: thread count and steal
//! interleaving never change the output. A forced single-threaded sweep
//! (the `DRAMLESS_THREADS=1` configuration) and a wide parallel sweep
//! over the same grid must serialize to byte-identical JSON.

use dramless::sweep::{sweep_on, sweep_specs_on};
use dramless::{SystemKind, SystemParams, SystemSpec, TelemetrySpec};
use util::pool::Pool;
use workloads::{Kernel, Scale, Workload};

fn grid() -> (Vec<SystemKind>, Vec<Workload>, SystemParams) {
    let kinds = vec![
        SystemKind::Hetero,
        SystemKind::DramLessFirmware,
        SystemKind::DramLess,
    ];
    let workloads = [Kernel::Trisolv, Kernel::Durbin, Kernel::Gemver]
        .iter()
        .map(|&k| Workload::of(k, Scale(0.2)))
        .collect();
    let params = SystemParams {
        agents: 3,
        ..Default::default()
    };
    (kinds, workloads, params)
}

#[test]
fn parallel_sweep_is_byte_identical_to_single_threaded() {
    let (kinds, workloads, params) = grid();

    let serial_pool = Pool::new(1);
    let (serial, serial_stats) = sweep_on(&serial_pool, &kinds, &workloads, &params);
    assert_eq!(serial_stats.threads, 1);

    let parallel_pool = Pool::new(4);
    let (parallel, parallel_stats) = sweep_on(&parallel_pool, &kinds, &workloads, &params);
    assert_eq!(parallel_stats.threads, 4);
    assert_eq!(parallel_stats.cells, 9);

    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "parallel sweep output diverged from the single-threaded sweep"
    );

    // And a second parallel run is stable too (the trace cache hands
    // back the same builds; simulation is seeded and deterministic).
    let (again, _) = sweep_on(&parallel_pool, &kinds, &workloads, &params);
    assert_eq!(parallel.to_json(), again.to_json());
}

#[test]
fn traced_sweep_is_byte_identical_across_thread_counts() {
    // Telemetry hubs are per-cell, so enabling tracing + metrics must
    // not reintroduce thread-count sensitivity: the serialized suite —
    // including every metric set — is identical at 1 and 4 workers.
    let specs: Vec<SystemSpec> = [SystemKind::Hetero, SystemKind::DramLess]
        .iter()
        .map(|k| SystemSpec {
            telemetry: Some(TelemetrySpec::default()),
            ..k.spec()
        })
        .collect();
    let workloads: Vec<Workload> = [Kernel::Trisolv, Kernel::Gemver]
        .iter()
        .map(|&k| Workload::of(k, Scale(0.2)))
        .collect();
    let params = SystemParams {
        agents: 3,
        ..Default::default()
    };

    let (serial, _) = sweep_specs_on(&Pool::new(1), &specs, &workloads, &params).unwrap();
    let (parallel, _) = sweep_specs_on(&Pool::new(4), &specs, &workloads, &params).unwrap();
    assert!(
        serial.outcomes.iter().all(|o| !o.metrics.is_empty()),
        "traced cells recorded no metrics"
    );
    assert!(serial.to_json().contains("\"metrics\""));
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "traced sweep output diverged across thread counts"
    );
}

#[test]
fn outcomes_are_in_workload_major_order() {
    let (kinds, workloads, params) = grid();
    let (r, _) = sweep_on(&Pool::new(2), &kinds, &workloads, &params);
    for (wi, w) in workloads.iter().enumerate() {
        for (ki, &kind) in kinds.iter().enumerate() {
            let o = &r.outcomes[wi * kinds.len() + ki];
            assert_eq!(o.kernel, w.kernel);
            assert_eq!(o.system, kind);
        }
    }
}
